package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"sort"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

// Segment format, version 2. A segment is the complete serialization of
// one sealed mining.Index — documents plus all three inverted-list
// families — laid out so the natural shape of the in-memory index (PR
// 5's born-sorted postings) becomes the natural shape on disk:
//
//	header   magic "BVSG" | version uint32 LE
//	body     string table   uvarint count, then len-prefixed strings
//	                        (sorted unique; every doc ID, concept
//	                        category/canonical, field name/value is a
//	                        uvarint reference into it)
//	         documents      uvarint count, then per document:
//	                        id ref · time varint · concepts (count,
//	                        then cat ref · canon ref · start · end) ·
//	                        fields (count, key-sorted, then key ref ·
//	                        value ref)
//	         postings ×3    concept {cat, canon} / category {cat} /
//	                        field {name, value} lists, key-sorted; each
//	                        list is a uvarint length followed by varint
//	                        deltas from the previous position (first
//	                        delta from -1), so sorted lists of nearby
//	                        document positions encode in ~1 byte/entry
//	dir      fixed-width offset directory over the body, all uint32 LE:
//	         per-string offsets, per-document offsets, then one 16-byte
//	         entry {key ref · key ref · list offset · doc frequency}
//	         per postings list in each family (category entries carry 0
//	         in the second ref). Offsets are absolute file offsets of
//	         the body records. The directory lets a mapped reader
//	         (OpenMapped) locate any string, document, or postings list
//	         directly instead of decoding the whole varint stream — the
//	         body is only touched lazily, list by list.
//	trailer  fixed 24 bytes, six uint32 LE: directory start offset ·
//	         string count · doc count · concept, category, field
//	         postings-list counts
//	footer   fixed 24 bytes: length of everything between header and
//	         footer uint64 LE · document count uint64 LE · version
//	         uint32 LE · CRC-32 (IEEE, over header through trailer)
//	         uint32 LE
//
// The footer is written last and read first: a reader validates magic,
// version, length, and checksum before decoding a single body byte, so
// truncated, bit-flipped, or foreign files are rejected up front.
// DecodeSegment additionally bounds-checks every count and reference,
// rebuilds the offset directory from the body and requires it to match
// the stored one byte-for-byte (so the eager and mapped readers can
// never disagree about an accepted file), and mining.FromSnapshot
// re-validates the postings contract — a segment either loads into an
// index byte-identical to the one written, or it errors; it never
// panics and never silently loads wrong data.
//
// Version 1 files are identical minus the directory and trailer;
// DecodeSegment still reads them (pre-existing data directories), but
// the encoder only writes version 2 and OpenMapped requires it.

var segMagic = [4]byte{'B', 'V', 'S', 'G'}

const (
	// SegmentVersion is the current on-disk format version. Readers
	// also accept segLegacyVersion; anything else is rejected rather
	// than guessed at.
	SegmentVersion   = 2
	segLegacyVersion = 1 // version-1 files carry no offset directory

	segHeaderLen  = 8  // magic + version
	segFooterLen  = 24 // bodyLen + docCount + version + crc32
	dirTrailerLen = 24 // dirStart + nStrs + nDocs + nConc + nCat + nField
	dirEntryLen   = 16 // keyRef0 + keyRef1 + listOff + df
)

// EncodeSegment serializes an index snapshot into segment bytes.
// Encoding is deterministic: the same snapshot always yields the same
// bytes (the string table is sorted, snapshot entries are key-sorted by
// mining.Export, and document fields are emitted key-sorted).
func EncodeSegment(snap *mining.IndexSnapshot) []byte {
	strs, ref := buildStringTable(snap)

	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, segMagic[:]...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, SegmentVersion)

	w.uvarint(uint64(len(strs)))
	strOffs := make([]uint32, len(strs))
	for i, s := range strs {
		strOffs[i] = uint32(len(w.buf))
		w.str(s)
	}

	w.uvarint(uint64(len(snap.Docs)))
	docOffs := make([]uint32, len(snap.Docs))
	fieldKeys := make([]string, 0, 8)
	for i, d := range snap.Docs {
		docOffs[i] = uint32(len(w.buf))
		w.uvarint(ref[d.ID])
		w.varint(int64(d.Time))
		w.uvarint(uint64(len(d.Concepts)))
		for _, c := range d.Concepts {
			w.uvarint(ref[c.Category])
			w.uvarint(ref[c.Canonical])
			w.varint(int64(c.Start))
			w.varint(int64(c.End))
		}
		fieldKeys = fieldKeys[:0]
		for k := range d.Fields {
			fieldKeys = append(fieldKeys, k)
		}
		sort.Strings(fieldKeys)
		w.uvarint(uint64(len(fieldKeys)))
		for _, k := range fieldKeys {
			w.uvarint(ref[k])
			w.uvarint(ref[d.Fields[k]])
		}
	}

	// Postings-list directory entries accumulate aside while the lists
	// stream into the body, then follow the string/doc offsets.
	dir := &writer{}
	entry := func(k0, k1 uint64, df int) {
		dir.u32(uint32(k0))
		dir.u32(uint32(k1))
		dir.u32(uint32(len(w.buf)))
		dir.u32(uint32(df))
	}

	w.uvarint(uint64(len(snap.Concepts)))
	for _, e := range snap.Concepts {
		w.uvarint(ref[e.Key[0]])
		w.uvarint(ref[e.Key[1]])
		entry(ref[e.Key[0]], ref[e.Key[1]], len(e.Posts))
		writePostings(w, e.Posts)
	}
	w.uvarint(uint64(len(snap.Categories)))
	for _, e := range snap.Categories {
		w.uvarint(ref[e.Category])
		entry(ref[e.Category], 0, len(e.Posts))
		writePostings(w, e.Posts)
	}
	w.uvarint(uint64(len(snap.Fields)))
	for _, e := range snap.Fields {
		w.uvarint(ref[e.Key[0]])
		w.uvarint(ref[e.Key[1]])
		entry(ref[e.Key[0]], ref[e.Key[1]], len(e.Posts))
		writePostings(w, e.Posts)
	}

	dirStart := uint32(len(w.buf))
	for _, off := range strOffs {
		w.u32(off)
	}
	for _, off := range docOffs {
		w.u32(off)
	}
	w.buf = append(w.buf, dir.buf...)
	w.u32(dirStart)
	w.u32(uint32(len(strs)))
	w.u32(uint32(len(snap.Docs)))
	w.u32(uint32(len(snap.Concepts)))
	w.u32(uint32(len(snap.Categories)))
	w.u32(uint32(len(snap.Fields)))
	if uint64(len(w.buf)) > 1<<32-1 {
		// The directory addresses the file with uint32 offsets; a
		// segment past 4 GiB would wrap them silently. The serving
		// layer seals far below this — fail loudly, not subtly.
		panic("store: segment exceeds the 4 GiB uint32 offset space")
	}

	bodyLen := uint64(len(w.buf) - segHeaderLen)
	crc := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, bodyLen)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(len(snap.Docs)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, SegmentVersion)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf
}

// buildStringTable collects every string a snapshot references, sorted
// unique, plus the string → index map used while encoding.
func buildStringTable(snap *mining.IndexSnapshot) ([]string, map[string]uint64) {
	set := map[string]struct{}{}
	add := func(s string) { set[s] = struct{}{} }
	for _, d := range snap.Docs {
		add(d.ID)
		for _, c := range d.Concepts {
			add(c.Category)
			add(c.Canonical)
		}
		for k, v := range d.Fields {
			add(k)
			add(v)
		}
	}
	for _, e := range snap.Concepts {
		add(e.Key[0])
		add(e.Key[1])
	}
	for _, e := range snap.Categories {
		add(e.Category)
	}
	for _, e := range snap.Fields {
		add(e.Key[0])
		add(e.Key[1])
	}
	strs := make([]string, 0, len(set))
	for s := range set {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	ref := make(map[string]uint64, len(strs))
	for i, s := range strs {
		ref[s] = uint64(i)
	}
	return strs, ref
}

// writePostings emits one sorted postings list as varint deltas.
func writePostings(w *writer, posts []int) {
	w.uvarint(uint64(len(posts)))
	prev := -1
	for _, p := range posts {
		w.uvarint(uint64(p - prev))
		prev = p
	}
}

// segEnvelope is the validated fixed-size frame of a segment file —
// everything a reader learns before touching a single body varint.
type segEnvelope struct {
	version  uint32
	docCount int
	bodyEnd  int // offset one past the varint-encoded body
	// Version-2 directory geometry (zero for legacy files):
	dirStart                        int
	nStrs, nDocs, nConc, nCat, nFld int
}

// checkEnvelope validates magic, version, footer geometry, and CRC,
// and for version-2 files the directory trailer: the directory
// sections must exactly fill the span between body and trailer. This
// is the complete up-front validation OpenMapped performs before
// serving lazily; everything past it is bounds-checked per read.
func checkEnvelope(data []byte) (segEnvelope, error) {
	var e segEnvelope
	if len(data) < segHeaderLen+segFooterLen {
		return e, corruptf("segment too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != segMagic {
		return e, corruptf("bad segment magic %q", data[:4])
	}
	e.version = binary.LittleEndian.Uint32(data[4:8])
	if e.version != SegmentVersion && e.version != segLegacyVersion {
		return e, corruptf("unsupported segment version %d (want %d or %d)",
			e.version, segLegacyVersion, SegmentVersion)
	}
	foot := data[len(data)-segFooterLen:]
	bodyLen := binary.LittleEndian.Uint64(foot[0:8])
	if v := binary.LittleEndian.Uint32(foot[16:20]); v != e.version {
		return e, corruptf("footer version %d disagrees with header", v)
	}
	if bodyLen != uint64(len(data)-segHeaderLen-segFooterLen) {
		return e, corruptf("footer body length %d, file has %d body bytes",
			bodyLen, len(data)-segHeaderLen-segFooterLen)
	}
	wantCRC := binary.LittleEndian.Uint32(foot[20:24])
	if got := crc32.ChecksumIEEE(data[:len(data)-segFooterLen]); got != wantCRC {
		return e, corruptf("checksum mismatch: file %08x, computed %08x", wantCRC, got)
	}
	dc, err := intFromU(binary.LittleEndian.Uint64(foot[8:16]), "footer document count")
	if err != nil {
		return e, err
	}
	e.docCount = dc
	e.bodyEnd = len(data) - segFooterLen
	if e.version == segLegacyVersion {
		return e, nil
	}

	if e.bodyEnd-segHeaderLen < dirTrailerLen {
		return e, corruptf("segment too short for directory trailer")
	}
	tr := data[e.bodyEnd-dirTrailerLen : e.bodyEnd]
	e.dirStart = int(binary.LittleEndian.Uint32(tr[0:4]))
	e.nStrs = int(binary.LittleEndian.Uint32(tr[4:8]))
	e.nDocs = int(binary.LittleEndian.Uint32(tr[8:12]))
	e.nConc = int(binary.LittleEndian.Uint32(tr[12:16]))
	e.nCat = int(binary.LittleEndian.Uint32(tr[16:20]))
	e.nFld = int(binary.LittleEndian.Uint32(tr[20:24]))
	if e.nDocs != e.docCount {
		return e, corruptf("directory trailer has %d documents, footer says %d", e.nDocs, e.docCount)
	}
	dirBytes := 4*(e.nStrs+e.nDocs) + dirEntryLen*(e.nConc+e.nCat+e.nFld)
	if e.dirStart < segHeaderLen || e.dirStart+dirBytes != e.bodyEnd-dirTrailerLen {
		return e, corruptf("directory geometry invalid: start %d, %d directory bytes, trailer at %d",
			e.dirStart, dirBytes, e.bodyEnd-dirTrailerLen)
	}
	e.bodyEnd = e.dirStart
	return e, nil
}

// DecodeSegment parses segment bytes back into an index snapshot,
// validating the envelope (magic, version, length, CRC) before the body
// and bounds-checking every reference inside it. For version-2 files
// the offset directory is rebuilt from the body and must match the
// stored bytes exactly, so a file this function accepts is served
// identically by the mapped reader. Errors satisfy IsCorrupt; the
// function never panics on any input.
func DecodeSegment(data []byte) (*mining.IndexSnapshot, error) {
	env, err := checkEnvelope(data)
	if err != nil {
		return nil, err
	}

	r := &reader{buf: data[:env.bodyEnd], off: segHeaderLen}
	// dir re-accumulates the offset directory while the body decodes
	// (version 2 only); compared against the stored bytes at the end.
	var dir *writer
	if env.version == SegmentVersion {
		dir = &writer{buf: make([]byte, 0, len(data)-segFooterLen-env.bodyEnd)}
	}

	nStrs, err := r.count("string table")
	if err != nil {
		return nil, err
	}
	strs := make([]string, nStrs)
	for i := range strs {
		if dir != nil {
			dir.u32(uint32(r.off))
		}
		if strs[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	strRef := func(what string) (uint64, string, error) {
		idx, err := r.uvarint()
		if err != nil {
			return 0, "", err
		}
		if idx >= uint64(len(strs)) {
			return 0, "", corruptf("%s string ref %d out of table (size %d)", what, idx, len(strs))
		}
		return idx, strs[idx], nil
	}
	str := func(what string) (string, error) {
		_, s, err := strRef(what)
		return s, err
	}

	nDocs, err := r.count("document")
	if err != nil {
		return nil, err
	}
	if nDocs != env.docCount {
		return nil, corruptf("body has %d documents, footer says %d", nDocs, env.docCount)
	}
	snap := &mining.IndexSnapshot{Docs: make([]mining.Document, nDocs)}
	for i := range snap.Docs {
		if dir != nil {
			dir.u32(uint32(r.off))
		}
		d := &snap.Docs[i]
		if d.ID, err = str("doc id"); err != nil {
			return nil, err
		}
		tm, err := r.varint()
		if err != nil {
			return nil, err
		}
		d.Time = int(tm)
		nc, err := r.count("concept")
		if err != nil {
			return nil, err
		}
		if nc > 0 {
			d.Concepts = make([]annotate.Concept, nc)
			for j := range d.Concepts {
				c := &d.Concepts[j]
				if c.Category, err = str("concept category"); err != nil {
					return nil, err
				}
				if c.Canonical, err = str("concept canonical"); err != nil {
					return nil, err
				}
				start, err := r.varint()
				if err != nil {
					return nil, err
				}
				end, err := r.varint()
				if err != nil {
					return nil, err
				}
				c.Start, c.End = int(start), int(end)
			}
		}
		nf, err := r.count("field")
		if err != nil {
			return nil, err
		}
		if nf > 0 {
			d.Fields = make(map[string]string, nf)
			for j := 0; j < nf; j++ {
				k, err := str("field name")
				if err != nil {
					return nil, err
				}
				v, err := str("field value")
				if err != nil {
					return nil, err
				}
				if _, dup := d.Fields[k]; dup {
					return nil, corruptf("document %q repeats field %q", d.ID, k)
				}
				d.Fields[k] = v
			}
		}
	}

	// readKeyed decodes one postings list with a one- or two-part key,
	// mirroring the encoder's directory entry as it goes.
	readKeyed := func(what0, what1 string) ([2]string, []int, error) {
		ref0, k0, err := strRef(what0)
		if err != nil {
			return [2]string{}, nil, err
		}
		var ref1 uint64
		var k1 string
		if what1 != "" {
			if ref1, k1, err = strRef(what1); err != nil {
				return [2]string{}, nil, err
			}
		}
		listOff := r.off
		posts, err := readPostings(r, nDocs)
		if err != nil {
			return [2]string{}, nil, err
		}
		if dir != nil {
			dir.u32(uint32(ref0))
			dir.u32(uint32(ref1))
			dir.u32(uint32(listOff))
			dir.u32(uint32(len(posts)))
		}
		return [2]string{k0, k1}, posts, nil
	}

	nConc, err := r.count("concept postings")
	if err != nil {
		return nil, err
	}
	snap.Concepts = make([]mining.KeyedPostings, nConc)
	for i := range snap.Concepts {
		e := &snap.Concepts[i]
		if e.Key, e.Posts, err = readKeyed("postings category", "postings canonical"); err != nil {
			return nil, err
		}
	}
	nCat, err := r.count("category postings")
	if err != nil {
		return nil, err
	}
	snap.Categories = make([]mining.CatPostings, nCat)
	for i := range snap.Categories {
		e := &snap.Categories[i]
		key, posts, err := readKeyed("postings category", "")
		if err != nil {
			return nil, err
		}
		e.Category, e.Posts = key[0], posts
	}
	nField, err := r.count("field postings")
	if err != nil {
		return nil, err
	}
	snap.Fields = make([]mining.KeyedPostings, nField)
	for i := range snap.Fields {
		e := &snap.Fields[i]
		if e.Key, e.Posts, err = readKeyed("postings field", "postings value"); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after segment body", r.remaining())
	}
	if dir != nil {
		dir.u32(uint32(env.dirStart))
		dir.u32(uint32(nStrs))
		dir.u32(uint32(nDocs))
		dir.u32(uint32(nConc))
		dir.u32(uint32(nCat))
		dir.u32(uint32(nField))
		if stored := data[env.dirStart : len(data)-segFooterLen]; !bytes.Equal(dir.buf, stored) {
			return nil, corruptf("offset directory disagrees with body")
		}
	}
	return snap, nil
}

// readPostings decodes one delta-encoded list, enforcing strictly
// increasing positions inside [0, nDocs).
func readPostings(r *reader, nDocs int) ([]int, error) {
	n, err := r.count("postings")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	posts := make([]int, n)
	prev := -1
	for i := range posts {
		dv, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		delta, err := intFromU(dv, "postings delta")
		if err != nil {
			return nil, err
		}
		if delta == 0 {
			return nil, corruptf("zero postings delta (duplicate position %d)", prev)
		}
		p := prev + delta
		if p >= nDocs {
			return nil, corruptf("postings position %d beyond %d documents", p, nDocs)
		}
		posts[i] = p
		prev = p
	}
	return posts, nil
}
