package store

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

// Mapped is the zero-copy read path over a sealed segment file: the
// file is memory-mapped (or read whole on platforms without mmap) and
// served through mining.Backing without materializing the index. Open
// cost is O(#postings lists), not O(corpus): the envelope is validated
// once (magic, version, geometry, CRC — the CRC pass touches every
// byte but allocates nothing and builds nothing), then only the
// fixed-width offset directory is walked to build the three key → list
// lookup tables. Postings stay varint-encoded in the mapping until a
// query first touches them; decoded lists land in a byte-budgeted LRU
// shared across a Store's segments, so the hot set is decoded once and
// cold lists never leave the page cache.
//
// Lazy reads are strictly bounds-checked. The CRC check at open makes
// post-open decode failures practically impossible for media damage,
// but a contract violation discovered lazily (a crafted file whose
// directory disagrees with its body — DecodeSegment would reject it
// outright) surfaces as a sticky error via Err and empty results,
// never a panic and never out-of-range positions: every decoded
// posting is validated against the document count before a query sees
// it, exactly as in the eager loader.
type Mapped struct {
	path  string
	id    uint64 // distinguishes this mapping's cache entries
	data  []byte
	unmap func([]byte) error
	cache *PostingsCache
	env   segEnvelope

	strOffs []byte // directory sections, aliasing data
	docOffs []byte

	concept  map[[2]string]dirEntry
	category map[string]dirEntry
	field    map[[2]string]dirEntry

	failure atomic.Pointer[error]
}

// dirEntry locates one postings list inside the mapping.
type dirEntry struct {
	off uint32 // absolute file offset of the list's count prefix
	df  uint32 // list length (document frequency)
}

var mappedIDs atomic.Uint64

// Mapped satisfies the mining storage interface directly.
var _ mining.Backing = (*Mapped)(nil)

// OpenMapped maps a segment file and builds its offset-directory
// lookup tables. cache may be shared across segments (nil gets a
// private default-budget cache). Only version-2 segments can be
// mapped; legacy files and any validation failure return an IsCorrupt
// error so callers can fall back to the materializing LoadSegment.
func OpenMapped(path string, cache *PostingsCache) (*Mapped, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := newMapped(path, data, unmap, cache)
	if err != nil {
		unmap(data)
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}
	return m, nil
}

// newMapped validates the envelope and walks the directory. Splitting
// it from OpenMapped lets the fuzz harness drive raw bytes through the
// exact open path without a file.
func newMapped(path string, data []byte, unmap func([]byte) error, cache *PostingsCache) (*Mapped, error) {
	env, err := checkEnvelope(data)
	if err != nil {
		return nil, err
	}
	if env.version != SegmentVersion {
		return nil, corruptf("segment version %d has no offset directory (cannot map)", env.version)
	}
	if cache == nil {
		cache = NewPostingsCache(0)
	}
	m := &Mapped{
		path:  path,
		id:    mappedIDs.Add(1),
		data:  data,
		unmap: unmap,
		cache: cache,
		env:   env,
	}
	off := env.dirStart
	m.strOffs = data[off : off+4*env.nStrs]
	off += 4 * env.nStrs
	m.docOffs = data[off : off+4*env.nDocs]
	off += 4 * env.nDocs
	concDir := data[off : off+dirEntryLen*env.nConc]
	off += dirEntryLen * env.nConc
	catDir := data[off : off+dirEntryLen*env.nCat]
	off += dirEntryLen * env.nCat
	fldDir := data[off : off+dirEntryLen*env.nFld]

	m.concept = make(map[[2]string]dirEntry, env.nConc)
	m.category = make(map[string]dirEntry, env.nCat)
	m.field = make(map[[2]string]dirEntry, env.nFld)
	for i := 0; i < env.nConc; i++ {
		k, e, err := m.dirEntryAt(concDir, i, true)
		if err != nil {
			return nil, err
		}
		if _, dup := m.concept[k]; dup {
			return nil, corruptf("directory repeats concept key %q/%q", k[0], k[1])
		}
		m.concept[k] = e
	}
	for i := 0; i < env.nCat; i++ {
		k, e, err := m.dirEntryAt(catDir, i, false)
		if err != nil {
			return nil, err
		}
		if _, dup := m.category[k[0]]; dup {
			return nil, corruptf("directory repeats category key %q", k[0])
		}
		m.category[k[0]] = e
	}
	for i := 0; i < env.nFld; i++ {
		k, e, err := m.dirEntryAt(fldDir, i, true)
		if err != nil {
			return nil, err
		}
		if _, dup := m.field[k]; dup {
			return nil, corruptf("directory repeats field key %q=%q", k[0], k[1])
		}
		m.field[k] = e
	}
	return m, nil
}

// dirEntryAt decodes the i-th fixed-width directory entry of one
// family section, resolving its key strings.
func (m *Mapped) dirEntryAt(section []byte, i int, twoKeys bool) ([2]string, dirEntry, error) {
	raw := section[i*dirEntryLen : (i+1)*dirEntryLen]
	var k [2]string
	var err error
	if k[0], err = m.strAt(binary.LittleEndian.Uint32(raw[0:4])); err != nil {
		return k, dirEntry{}, err
	}
	if twoKeys {
		if k[1], err = m.strAt(binary.LittleEndian.Uint32(raw[4:8])); err != nil {
			return k, dirEntry{}, err
		}
	}
	e := dirEntry{
		off: binary.LittleEndian.Uint32(raw[8:12]),
		df:  binary.LittleEndian.Uint32(raw[12:16]),
	}
	if int(e.df) > m.env.docCount {
		return k, dirEntry{}, corruptf("directory df %d exceeds %d documents", e.df, m.env.docCount)
	}
	return k, e, nil
}

// strAt resolves one string-table reference through the offset
// directory, bounds-checked against the body.
func (m *Mapped) strAt(ref uint32) (string, error) {
	if int(ref) >= m.env.nStrs {
		return "", corruptf("string ref %d out of table (size %d)", ref, m.env.nStrs)
	}
	off := binary.LittleEndian.Uint32(m.strOffs[4*ref:])
	r, err := m.bodyReader(off)
	if err != nil {
		return "", err
	}
	return r.str()
}

// bodyReader positions a bounds-checked reader at an absolute offset
// inside the body section.
func (m *Mapped) bodyReader(off uint32) (reader, error) {
	if int64(off) < segHeaderLen || int64(off) >= int64(m.env.bodyEnd) {
		return reader{}, corruptf("directory offset %d outside body [%d, %d)", off, segHeaderLen, m.env.bodyEnd)
	}
	return reader{buf: m.data[:m.env.bodyEnd], off: int(off)}, nil
}

// fail records the first lazy-decode contract violation; queries after
// it keep returning empty results rather than wrong ones.
func (m *Mapped) fail(err error) {
	boxed := fmt.Errorf("store: mapped segment %s: %w", m.path, err)
	m.failure.CompareAndSwap(nil, &boxed)
}

// Err returns the sticky lazy-decode error, nil while the mapping has
// served every read cleanly.
func (m *Mapped) Err() error {
	if p := m.failure.Load(); p != nil {
		return *p
	}
	return nil
}

// Path returns the mapped file's path.
func (m *Mapped) Path() string { return m.path }

// Bytes returns the size of the mapping.
func (m *Mapped) Bytes() int64 { return int64(len(m.data)) }

// Close releases the mapping. The caller must guarantee no query can
// still reach it — the serving layer keeps mappings alive until the
// whole store closes, because in-flight queries may hold snapshots of
// superseded segments.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return m.unmap(data)
}

// postings returns one decoded list, consulting the shared cache
// first. A miss decodes the exact-length list out of the mapping and
// publishes it; concurrent misses on the same list converge on one
// cached copy.
func (m *Mapped) postings(e dirEntry) []int {
	if e.df == 0 {
		return nil
	}
	key := postKey{seg: m.id, off: e.off}
	if posts, ok := m.cache.get(key); ok {
		return posts
	}
	posts, err := m.decodeList(e)
	if err != nil {
		m.fail(err)
		return nil
	}
	return m.cache.put(key, posts)
}

// decodeList decodes one delta-encoded postings list at a directory
// entry, enforcing the same contract as the eager loader: the stored
// count must match the directory's df and positions must be strictly
// increasing inside [0, docCount).
func (m *Mapped) decodeList(e dirEntry) ([]int, error) {
	r, err := m.bodyReader(e.off)
	if err != nil {
		return nil, err
	}
	n, err := r.count("postings")
	if err != nil {
		return nil, err
	}
	if n != int(e.df) {
		return nil, corruptf("postings list has %d entries, directory says %d", n, e.df)
	}
	posts := make([]int, n)
	prev := -1
	for i := range posts {
		dv, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		delta, err := intFromU(dv, "postings delta")
		if err != nil {
			return nil, err
		}
		if delta == 0 {
			return nil, corruptf("zero postings delta (duplicate position %d)", prev)
		}
		p := prev + delta
		if p >= m.env.docCount {
			return nil, corruptf("postings position %d beyond %d documents", p, m.env.docCount)
		}
		posts[i] = p
		prev = p
	}
	return posts, nil
}

// docReader positions a reader at the i-th document record.
func (m *Mapped) docReader(i int) (reader, error) {
	if i < 0 || i >= m.env.nDocs {
		return reader{}, corruptf("document index %d out of range (%d documents)", i, m.env.nDocs)
	}
	return m.bodyReader(binary.LittleEndian.Uint32(m.docOffs[4*i:]))
}

// DocCount implements mining.Backing.
func (m *Mapped) DocCount() int { return m.env.docCount }

// Doc implements mining.Backing: the i-th document decoded out of the
// mapping. Document decode is off the hot count/associate path (only
// drill-downs and compaction re-encodes materialize documents), so
// results are not cached.
func (m *Mapped) Doc(i int) mining.Document {
	r, err := m.docReader(i)
	if err != nil {
		m.fail(err)
		return mining.Document{}
	}
	d, err := m.decodeDoc(&r)
	if err != nil {
		m.fail(err)
		return mining.Document{}
	}
	return d
}

// DocID implements mining.Backing: one string-ref read instead of a
// full record decode.
func (m *Mapped) DocID(i int) string {
	r, err := m.docReader(i)
	if err != nil {
		m.fail(err)
		return ""
	}
	idRef, err := r.uvarint()
	if err != nil {
		m.fail(err)
		return ""
	}
	id, err := m.strAt(uint32(idRef))
	if err != nil {
		m.fail(err)
		return ""
	}
	return id
}

// DocTime implements mining.Backing: skips the id ref and reads the
// time varint — two varint reads per matching document on Trend.
func (m *Mapped) DocTime(i int) int {
	r, err := m.docReader(i)
	if err != nil {
		m.fail(err)
		return 0
	}
	if _, err := r.uvarint(); err != nil { // id ref
		m.fail(err)
		return 0
	}
	tm, err := r.varint()
	if err != nil {
		m.fail(err)
		return 0
	}
	return int(tm)
}

// decodeDoc decodes one document record, mirroring DecodeSegment's
// per-document loop with directory-resolved strings.
func (m *Mapped) decodeDoc(r *reader) (mining.Document, error) {
	var d mining.Document
	str := func(what string) (string, error) {
		ref, err := r.uvarint()
		if err != nil {
			return "", err
		}
		if ref > 1<<32-1 {
			return "", corruptf("%s string ref %d out of table (size %d)", what, ref, m.env.nStrs)
		}
		return m.strAt(uint32(ref))
	}
	var err error
	if d.ID, err = str("doc id"); err != nil {
		return d, err
	}
	tm, err := r.varint()
	if err != nil {
		return d, err
	}
	d.Time = int(tm)
	nc, err := r.count("concept")
	if err != nil {
		return d, err
	}
	if nc > 0 {
		d.Concepts = make([]annotate.Concept, nc)
		for j := range d.Concepts {
			c := &d.Concepts[j]
			if c.Category, err = str("concept category"); err != nil {
				return d, err
			}
			if c.Canonical, err = str("concept canonical"); err != nil {
				return d, err
			}
			start, err := r.varint()
			if err != nil {
				return d, err
			}
			end, err := r.varint()
			if err != nil {
				return d, err
			}
			c.Start, c.End = int(start), int(end)
		}
	}
	nf, err := r.count("field")
	if err != nil {
		return d, err
	}
	if nf > 0 {
		d.Fields = make(map[string]string, nf)
		for j := 0; j < nf; j++ {
			k, err := str("field name")
			if err != nil {
				return d, err
			}
			v, err := str("field value")
			if err != nil {
				return d, err
			}
			if _, dup := d.Fields[k]; dup {
				return d, corruptf("document %q repeats field %q", d.ID, k)
			}
			d.Fields[k] = v
		}
	}
	return d, nil
}

// ConceptPostings implements mining.Backing.
func (m *Mapped) ConceptPostings(category, canonical string) []int {
	e, ok := m.concept[[2]string{category, canonical}]
	if !ok {
		return nil
	}
	return m.postings(e)
}

// CategoryPostings implements mining.Backing.
func (m *Mapped) CategoryPostings(category string) []int {
	e, ok := m.category[category]
	if !ok {
		return nil
	}
	return m.postings(e)
}

// FieldPostings implements mining.Backing.
func (m *Mapped) FieldPostings(field, value string) []int {
	e, ok := m.field[[2]string{field, value}]
	if !ok {
		return nil
	}
	return m.postings(e)
}

// EachConcept implements mining.Backing. The df comes straight from
// the directory — no postings are decoded.
func (m *Mapped) EachConcept(fn func(category, canonical string, df int)) {
	for k, e := range m.concept {
		fn(k[0], k[1], int(e.df))
	}
}

// EachCategory implements mining.Backing.
func (m *Mapped) EachCategory(fn func(category string, df int)) {
	for cat, e := range m.category {
		fn(cat, int(e.df))
	}
}

// EachField implements mining.Backing.
func (m *Mapped) EachField(fn func(field, value string, df int)) {
	for k, e := range m.field {
		fn(k[0], k[1], int(e.df))
	}
}
