package store

import "sync"

// PostingsCache is the byte-budgeted LRU of decoded postings lists
// shared by a Store's mapped segments. Keys are (mapping, file offset)
// — immutable for the life of a mapping, so entries never go stale;
// superseded segments simply stop being asked for and age out. The
// cached []int slices are handed to queries as read-only views and are
// never recycled (a reader may hold one past eviction); only the LRU
// node bookkeeping is pooled, so a steady-state hit allocates nothing.
type PostingsCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	hits    uint64
	misses  uint64
	entries map[postKey]*postEntry
	// Intrusive LRU list: front = most recently used.
	front, back *postEntry
	free        *postEntry // pooled nodes, chained via next
}

// postKey identifies one decoded list: the mapping's id plus the
// list's absolute file offset.
type postKey struct {
	seg uint64
	off uint32
}

type postEntry struct {
	key        postKey
	posts      []int
	prev, next *postEntry
}

// postEntryOverhead approximates the per-entry bookkeeping cost (map
// slot + LRU node) charged against the budget on top of the slice.
const postEntryOverhead = 96

// DefaultPostingsBudget caps the decoded-postings cache when the
// caller does not set one: enough for the hot set of a multi-million
// document corpus while staying far below materializing it.
const DefaultPostingsBudget = 64 << 20

// NewPostingsCache returns a cache holding at most budget bytes of
// decoded postings (0 or negative = DefaultPostingsBudget).
func NewPostingsCache(budget int64) *PostingsCache {
	if budget <= 0 {
		budget = DefaultPostingsBudget
	}
	return &PostingsCache{budget: budget, entries: map[postKey]*postEntry{}}
}

func entryCost(posts []int) int64 {
	return int64(len(posts))*8 + postEntryOverhead
}

// get returns the cached list and promotes it.
func (c *PostingsCache) get(key postKey) ([]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.posts, true
}

// put publishes a freshly decoded list, evicting from the cold end
// until the budget holds, and returns the canonical slice: if another
// goroutine decoded the same list first, its copy wins and the
// caller's is dropped, so all readers share one allocation.
func (c *PostingsCache) put(key postKey, posts []int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		return e.posts
	}
	e := c.newEntry()
	e.key, e.posts = key, posts
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += entryCost(posts)
	for c.bytes > c.budget && c.back != nil && c.back != e {
		c.evict(c.back)
	}
	if c.bytes > c.budget {
		// A single list larger than the whole budget: serve it but do
		// not retain it.
		c.evict(e)
	}
	return posts
}

func (c *PostingsCache) evict(e *postEntry) {
	c.bytes -= entryCost(e.posts)
	delete(c.entries, e.key)
	c.unlink(e)
	e.posts = nil // the slice may outlive the entry in a reader; drop only our ref
	e.prev = nil
	e.next = c.free
	c.free = e
}

func (c *PostingsCache) newEntry() *postEntry {
	if e := c.free; e != nil {
		c.free = e.next
		e.next = nil
		return e
	}
	return &postEntry{}
}

func (c *PostingsCache) pushFront(e *postEntry) {
	e.prev, e.next = nil, c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

func (c *PostingsCache) unlink(e *postEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
}

func (c *PostingsCache) moveToFront(e *postEntry) {
	if c.front == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// PostingsCacheStats is a point-in-time snapshot for /statsz.
type PostingsCacheStats struct {
	Bytes   int64
	Budget  int64
	Entries int
	Hits    uint64
	Misses  uint64
}

// StatsSnapshot returns the cache's current occupancy and hit counters.
func (c *PostingsCache) StatsSnapshot() PostingsCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PostingsCacheStats{
		Bytes:   c.bytes,
		Budget:  c.budget,
		Entries: len(c.entries),
		Hits:    c.hits,
		Misses:  c.misses,
	}
}
