package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bivoc/internal/mining"
)

// Options configures a Store.
type Options struct {
	// SyncEvery fsyncs the WAL after every Nth appended document. 1 (and
	// the default 0) syncs every append — nothing acknowledged is ever
	// lost; larger values amortize the fsync at the cost of a bounded
	// window of documents that may need re-ingesting after a crash.
	SyncEvery int
	// MapSegments serves sealed segments straight out of read-only file
	// mappings (OpenMapped) instead of materializing them on the heap:
	// recovery touches O(#postings lists) per segment instead of
	// O(corpus), and resident memory tracks the hot query set rather
	// than the corpus. Segments that cannot be mapped (legacy version-1
	// files, damage) silently fall back to the materializing loader.
	MapSegments bool
	// PostingsBudget caps the decoded-postings cache shared by the
	// mapped segments, in bytes. 0 uses DefaultPostingsBudget. Ignored
	// unless MapSegments is set.
	PostingsBudget int64
}

func (o Options) syncEvery() int {
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// RecoveredSegment is one live segment Open loaded from disk, already
// Prepared and query-ready.
type RecoveredSegment struct {
	Gen   uint64
	Index *mining.Index
}

// Recovery is what Open reconstructed from the data directory: the
// live segments named by the manifest (already Prepared, so they can be
// published and queried immediately) and the WAL tail of documents
// ingested after they were written, deduplicated against them.
type Recovery struct {
	// Segments are the recovered live segments, ascending by generation.
	Segments []RecoveredSegment
	// Index is the segment-loaded index when exactly one segment was
	// recovered (the single-lineage shape WriteSegment maintains); nil
	// when there are no segments or when the lineage holds several (use
	// Segments).
	Index *mining.Index
	// SegmentGen is the newest recovered generation; SegmentDocs is the
	// total document count across recovered segments.
	SegmentGen  uint64
	SegmentDocs int
	// WALDocs are the intact WAL records not already in the segment, in
	// append order.
	WALDocs []mining.Document
	// WALDropped counts torn-tail bytes truncated from the WAL —
	// documents inside the configured fsync window when the process
	// died, which ingest will simply re-process.
	WALDropped int64
	// SkippedSegments names segment files that failed validation and
	// were passed over for an older generation.
	SkippedSegments []string
}

// Docs returns segment documents followed by the WAL tail — everything
// durable, in the order the serving layer should re-adopt it.
func (r *Recovery) Docs() []mining.Document {
	var out []mining.Document
	if r.SegmentDocs > 0 {
		out = make([]mining.Document, 0, r.SegmentDocs+len(r.WALDocs))
		for _, seg := range r.Segments {
			for i := 0; i < seg.Index.Len(); i++ {
				out = append(out, seg.Index.Doc(i))
			}
		}
	}
	return append(out, r.WALDocs...)
}

// IDs returns the set of durable document IDs — the ingest skip set
// for warm restarts.
func (r *Recovery) IDs() map[string]bool {
	ids := make(map[string]bool, r.SegmentDocs+len(r.WALDocs))
	for _, seg := range r.Segments {
		for i := 0; i < seg.Index.Len(); i++ {
			ids[seg.Index.DocID(i)] = true
		}
	}
	for _, d := range r.WALDocs {
		ids[d.ID] = true
	}
	return ids
}

// SegmentStat describes one live on-disk segment.
type SegmentStat struct {
	Gen   uint64
	Path  string
	Bytes int64
	Docs  int
}

// Stats is the store's operational state, surfaced on /statsz. The
// scalar Segment* fields describe the newest live segment (SegmentDocs
// is the total across the lineage); Segments lists every live segment.
type Stats struct {
	SegmentGen   uint64
	SegmentPath  string
	SegmentBytes int64
	SegmentDocs  int
	Segments     []SegmentStat
	WALRecords   int
	WALBytes     int64
	// LastSeal is the wall time the current segment was written by this
	// process; zero for segments inherited from an earlier run.
	LastSeal time.Time
	// Mapped-segment serving (zero unless the store was opened with
	// MapSegments): how many live segments are served from mappings,
	// their total mapped bytes, the decoded-postings cache occupancy,
	// and how long Open spent bringing the lineage up.
	MappedSegments int
	MappedBytes    int64
	PostingsCache  PostingsCacheStats
	OpenDuration   time.Duration
}

// segMeta is the in-memory record of one live segment file.
type segMeta struct {
	gen    uint64
	path   string
	bytes  int64
	docs   int
	mapped *Mapped // non-nil when this generation is served from a mapping
}

// Store is one data directory: the live segment lineage (named by the
// MANIFEST file) plus the ingest WAL. WAL appends and stats reads are
// safe for concurrent use; the segment mutators (WriteSegment,
// AppendSegment, ReplaceSegments) must be serialized by the caller —
// the serving layer holds its publish lock across them.
type Store struct {
	dir       string
	syncEvery int
	mapSegs   bool
	cache     *PostingsCache // decoded-postings LRU shared by mappings; nil unless MapSegments

	mu       sync.Mutex
	rec      *Recovery
	wal      *os.File
	walLen   int64
	walRecs  int
	unsynced int
	segments []segMeta // live lineage, ascending by generation
	maxGen   uint64    // highest generation present on disk (damaged ones included)
	lastSeal time.Time
	// mappings holds every mapping this store ever opened; they are
	// released only at Close — in-flight queries may still hold
	// snapshots over superseded segments, and a compaction lineage is
	// O(log n) mappings deep, so deferring unmap is bounded.
	mappings []*Mapped
	openDur  time.Duration // time Open spent loading/mapping live segments
}

// Open prepares a data directory for serving: creates it if missing,
// removes orphaned temp files from interrupted segment writes, loads
// the live segment lineage named by the manifest (falling back to the
// newest readable segment file when the manifest is absent or its
// segments are damaged), replays the WAL tail, truncates any torn
// record, and leaves the WAL open for append. The recovered state is
// available via Recovered.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	openStart := time.Now()
	s := &Store{dir: dir, syncEvery: opts.syncEvery(), mapSegs: opts.MapSegments}
	if s.mapSegs {
		s.cache = NewPostingsCache(opts.PostingsBudget)
	}
	if err := s.cleanOrphans(); err != nil {
		return nil, err
	}
	rec := &Recovery{}
	gens, err := s.scanSegments()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		// New segments number past every file present, including damaged
		// ones a recovery skipped — names never collide.
		s.maxGen = gens[len(gens)-1]
	}
	// Prefer the manifest's live lineage; a generation it names that is
	// unreadable is recorded and skipped (its documents survive in the
	// WAL unless a seal already superseded them).
	tried := map[uint64]bool{}
	for _, gen := range s.loadManifest() {
		tried[gen] = true
		path := s.segmentPath(gen)
		ix, size, m, err := s.loadOrMap(path)
		if err != nil {
			if !IsCorrupt(err) && !errors.Is(err, os.ErrNotExist) {
				return nil, err
			}
			rec.SkippedSegments = append(rec.SkippedSegments, filepath.Base(path))
			continue
		}
		rec.Segments = append(rec.Segments, RecoveredSegment{Gen: gen, Index: ix})
		s.segments = append(s.segments, segMeta{gen: gen, path: path, bytes: size, docs: ix.Len(), mapped: m})
	}
	if len(rec.Segments) == 0 {
		// No manifest, or everything it named was unreadable: fall back
		// to the newest readable segment file (pre-manifest directories,
		// and the last line of defense after lineage damage).
		for i := len(gens) - 1; i >= 0; i-- {
			if tried[gens[i]] {
				continue
			}
			path := s.segmentPath(gens[i])
			ix, size, m, err := s.loadOrMap(path)
			if err != nil {
				if !IsCorrupt(err) {
					return nil, err
				}
				rec.SkippedSegments = append(rec.SkippedSegments, filepath.Base(path))
				continue
			}
			rec.Segments = append(rec.Segments, RecoveredSegment{Gen: gens[i], Index: ix})
			s.segments = append(s.segments, segMeta{gen: gens[i], path: path, bytes: size, docs: ix.Len(), mapped: m})
			break
		}
	}
	for _, seg := range rec.Segments {
		rec.SegmentDocs += seg.Index.Len()
		if seg.Gen > rec.SegmentGen {
			rec.SegmentGen = seg.Gen
		}
	}
	if len(rec.Segments) == 1 {
		rec.Index = rec.Segments[0].Index
	}
	walPath := filepath.Join(dir, "wal.log")
	walDocs, goodLen, dropped, err := replayWAL(walPath)
	if err != nil {
		return nil, err
	}
	rec.WALDropped = dropped
	if len(walDocs) > 0 {
		// Dedup needs every segment document's ID (DocID — over a
		// mapped segment that is a ref read per document, not a full
		// decode). With an empty WAL — the common warm restart after a
		// clean seal — skip it entirely, keeping mapped opens
		// O(#postings lists).
		seen := map[string]bool{}
		for _, seg := range rec.Segments {
			for i := 0; i < seg.Index.Len(); i++ {
				seen[seg.Index.DocID(i)] = true
			}
		}
		for _, d := range walDocs {
			// A crash between segment rename and WAL reset leaves both
			// holding the same documents; the segment wins.
			if !seen[d.ID] {
				seen[d.ID] = true
				rec.WALDocs = append(rec.WALDocs, d)
			}
		}
	}
	f, goodLen, err := openWALForAppend(walPath, goodLen)
	if err != nil {
		return nil, err
	}
	s.wal, s.walLen, s.walRecs = f, goodLen, len(walDocs)
	s.rec = rec
	s.openDur = time.Since(openStart)
	return s, nil
}

// loadOrMap opens one segment file the way the store is configured:
// mapped (zero-copy, lazy) when MapSegments is on, else materialized.
// A file that cannot be mapped — a legacy version-1 segment, or
// damage — falls back to the materializing loader, which re-validates
// from scratch and yields the definitive IsCorrupt verdict; the
// fallback can never serve different bytes because DecodeSegment
// refuses any file whose offset directory disagrees with its body.
// Called during Open (single-threaded) and from MapSegment (s.mu
// must not be held — mapping does file I/O).
func (s *Store) loadOrMap(path string) (*mining.Index, int64, *Mapped, error) {
	if s.mapSegs {
		m, err := OpenMapped(path, s.cache)
		if err == nil {
			ix := mining.FromBacking(m)
			ix.Prepare()
			s.mu.Lock()
			s.mappings = append(s.mappings, m)
			s.mu.Unlock()
			return ix, m.Bytes(), m, nil
		}
		if !IsCorrupt(err) && !errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil, err
		}
	}
	ix, size, err := LoadSegment(path)
	return ix, size, nil, err
}

// MapSegment reopens a live generation through the mapped reader —
// the compaction handoff: after ReplaceSegments persists a merged
// segment, the serving layer swaps its heap-resident merged index for
// the mapping so the materialized copy can be collected. Fails (and
// the caller keeps the heap index) rather than ever serving a
// generation that does not map cleanly.
func (s *Store) MapSegment(gen uint64) (*mining.Index, error) {
	if !s.mapSegs {
		return nil, fmt.Errorf("store: MapSegment: store was opened without MapSegments")
	}
	s.mu.Lock()
	live := false
	for i := range s.segments {
		if s.segments[i].gen == gen {
			live = true
		}
	}
	s.mu.Unlock()
	if !live {
		return nil, fmt.Errorf("store: MapSegment: generation %d is not live", gen)
	}
	m, err := OpenMapped(s.segmentPath(gen), s.cache)
	if err != nil {
		return nil, err
	}
	ix := mining.FromBacking(m)
	ix.Prepare()
	s.mu.Lock()
	s.mappings = append(s.mappings, m)
	for i := range s.segments {
		if s.segments[i].gen == gen {
			s.segments[i].mapped = m
		}
	}
	s.mu.Unlock()
	return ix, nil
}

// Recovered returns what Open reconstructed from disk.
func (s *Store) Recovered() *Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// cleanOrphans removes *.tmp files left by interrupted atomic writes.
func (s *Store) cleanOrphans() error {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return fmt.Errorf("store: scanning temp files: %w", err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: removing orphaned %s: %w", m, err)
		}
	}
	return nil
}

func (s *Store) segmentPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%016d.seg", gen))
}

// scanSegments returns the segment generations present, ascending.
func (s *Store) scanSegments() ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "seg-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning segments: %w", err)
	}
	var gens []uint64
	for _, m := range matches {
		base := filepath.Base(m)
		var gen uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(base, ".seg"), "seg-%d", &gen); err != nil {
			continue // not ours
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// LoadSegment reads and validates one segment file into a Prepared,
// query-ready index. Decode errors satisfy IsCorrupt.
func LoadSegment(path string) (*mining.Index, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading segment: %w", err)
	}
	snap, err := DecodeSegment(data)
	if err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", filepath.Base(path), err)
	}
	ix, err := mining.FromSnapshot(snap)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: store: segment %s: %v", errCorrupt, filepath.Base(path), err)
	}
	ix.Prepare()
	return ix, int64(len(data)), nil
}

// manifestPath is the live-lineage file: a versioned header followed by
// one live segment generation per line. It is rewritten atomically on
// every segment mutation; segment files not named by it are dead weight
// from interrupted mutations (harmless — generation numbering never
// reuses them).
func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }

const manifestHeader = "BVMF 1"

// loadManifest returns the live generations the manifest names,
// ascending, or nil when the manifest is missing or malformed (the
// caller then falls back to the newest-readable-file scan).
func (s *Store) loadManifest() []uint64 {
	data, err := os.ReadFile(s.manifestPath())
	if err != nil {
		return nil
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != manifestHeader {
		return nil
	}
	var gens []uint64
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		gen, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// writeManifest atomically replaces the live lineage.
func (s *Store) writeManifest(gens []uint64) error {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, g := range gens {
		b.WriteString(strconv.FormatUint(g, 10))
		b.WriteByte('\n')
	}
	path := s.manifestPath()
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, []byte(b.String())); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	return syncDir(s.dir)
}

// writeSegmentFile atomically writes one segment file: temp file,
// fsync, rename into place, fsync the directory.
func (s *Store) writeSegmentFile(gen uint64, data []byte) error {
	path := s.segmentPath(gen)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing segment: %w", err)
	}
	return syncDir(s.dir)
}

// nextGenLocked allocates the next segment generation (never reusing a
// number any file on disk has carried, damaged ones included).
func (s *Store) nextGenLocked() uint64 { return s.maxGen + 1 }

// liveGensLocked returns the current live generations.
func (s *Store) liveGensLocked() []uint64 {
	gens := make([]uint64, len(s.segments))
	for i, m := range s.segments {
		gens[i] = m.gen
	}
	return gens
}

// WriteSegment atomically persists a sealed index as the next segment
// generation and makes it the entire live lineage (the single-segment
// shape batch runs use). Older generations beyond one fallback are
// pruned. The WAL is untouched — call ResetWAL once the segment is
// durable (a crash in between is handled by recovery's dedup).
func (s *Store) WriteSegment(ix *mining.Index) (Stats, error) {
	data := EncodeSegment(ix.Export())
	s.mu.Lock()
	gen := s.nextGenLocked()
	s.mu.Unlock()

	if err := s.writeSegmentFile(gen, data); err != nil {
		return Stats{}, err
	}
	if err := s.writeManifest([]uint64{gen}); err != nil {
		return Stats{}, err
	}

	s.mu.Lock()
	s.maxGen = gen
	s.segments = []segMeta{{gen: gen, path: s.segmentPath(gen), bytes: int64(len(data)), docs: ix.Len()}}
	s.lastSeal = time.Now()
	s.mu.Unlock()

	// Keep the previous generation as a fallback against latent media
	// corruption; prune everything older.
	gens, err := s.scanSegments()
	if err == nil {
		for _, g := range gens {
			if g+1 < gen {
				os.Remove(s.segmentPath(g))
			}
		}
	}
	return s.Stats(), nil
}

// AppendSegment atomically persists a sealed index as a new segment
// appended to the live lineage — the per-publish path of the segmented
// serving layer: each snapshot swap durably adds only the documents
// sealed by that swap. The WAL is untouched (it keeps covering
// everything until the final seal resets it).
func (s *Store) AppendSegment(ix *mining.Index) (Stats, error) {
	data := EncodeSegment(ix.Export())
	s.mu.Lock()
	gen := s.nextGenLocked()
	live := append(s.liveGensLocked(), gen)
	s.mu.Unlock()

	if err := s.writeSegmentFile(gen, data); err != nil {
		return Stats{}, err
	}
	if err := s.writeManifest(live); err != nil {
		return Stats{}, err
	}

	s.mu.Lock()
	s.maxGen = gen
	s.segments = append(s.segments, segMeta{gen: gen, path: s.segmentPath(gen), bytes: int64(len(data)), docs: ix.Len()})
	s.lastSeal = time.Now()
	s.mu.Unlock()
	return s.Stats(), nil
}

// ReplaceSegments atomically persists a compacted index as a new
// segment that supersedes the removed generations: the merged segment
// is written first, then the manifest swaps the lineage, then the
// superseded files are deleted. A crash at any point leaves a manifest
// whose lineage covers the same documents.
func (s *Store) ReplaceSegments(removed []uint64, ix *mining.Index) (Stats, error) {
	data := EncodeSegment(ix.Export())
	rm := make(map[uint64]bool, len(removed))
	for _, g := range removed {
		rm[g] = true
	}
	s.mu.Lock()
	gen := s.nextGenLocked()
	var live []uint64
	for _, m := range s.segments {
		if !rm[m.gen] {
			live = append(live, m.gen)
		}
	}
	live = append(live, gen)
	s.mu.Unlock()

	if err := s.writeSegmentFile(gen, data); err != nil {
		return Stats{}, err
	}
	if err := s.writeManifest(live); err != nil {
		return Stats{}, err
	}

	s.mu.Lock()
	kept := s.segments[:0]
	for _, m := range s.segments {
		if !rm[m.gen] {
			kept = append(kept, m)
		}
	}
	s.segments = append(kept, segMeta{gen: gen, path: s.segmentPath(gen), bytes: int64(len(data)), docs: ix.Len()})
	s.maxGen = gen
	s.lastSeal = time.Now()
	s.mu.Unlock()

	for _, g := range removed {
		if g != 0 {
			os.Remove(s.segmentPath(g))
		}
	}
	return s.Stats(), nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}

// AppendWAL logs one ingested document, fsyncing on the configured
// cadence. Called from the single ingest goroutine.
func (s *Store) AppendWAL(doc mining.Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: AppendWAL on a closed store")
	}
	rec := appendWALRecord(nil, doc)
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	s.walLen += int64(len(rec))
	s.walRecs++
	s.unsynced++
	if s.unsynced >= s.syncEvery {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		s.unsynced = 0
	}
	return nil
}

// SyncWAL forces any buffered-in-kernel WAL records to disk regardless
// of the cadence.
func (s *Store) SyncWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil || s.unsynced == 0 {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	s.unsynced = 0
	return nil
}

// ResetWAL empties the log — every record is now covered by a durable
// segment.
func (s *Store) ResetWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: ResetWAL on a closed store")
	}
	if err := s.wal.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if _, err := s.wal.Seek(walHeaderLen, 0); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing reset WAL: %w", err)
	}
	s.walLen, s.walRecs, s.unsynced = walHeaderLen, 0, 0
	return nil
}

// Stats returns the store's current persistence state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		WALRecords:   s.walRecs,
		WALBytes:     s.walLen,
		LastSeal:     s.lastSeal,
		OpenDuration: s.openDur,
	}
	for _, m := range s.segments {
		st.Segments = append(st.Segments, SegmentStat{Gen: m.gen, Path: m.path, Bytes: m.bytes, Docs: m.docs})
		st.SegmentDocs += m.docs
		if m.mapped != nil {
			st.MappedSegments++
			st.MappedBytes += m.mapped.Bytes()
		}
	}
	if s.cache != nil {
		st.PostingsCache = s.cache.StatsSnapshot()
	}
	if n := len(s.segments); n > 0 {
		newest := s.segments[n-1]
		st.SegmentGen, st.SegmentPath, st.SegmentBytes = newest.gen, newest.path, newest.bytes
	}
	return st
}

// Close syncs and closes the WAL and releases every segment mapping.
// The store — and every index served from a mapping — is unusable
// afterwards; the serving layer must have stopped queries first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, m := range s.mappings {
		if merr := m.Close(); err == nil {
			err = merr
		}
	}
	s.mappings = nil
	if s.wal == nil {
		return err
	}
	if serr := s.wal.Sync(); err == nil {
		err = serr
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}
