package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bivoc/internal/mining"
)

// Options configures a Store.
type Options struct {
	// SyncEvery fsyncs the WAL after every Nth appended document. 1 (and
	// the default 0) syncs every append — nothing acknowledged is ever
	// lost; larger values amortize the fsync at the cost of a bounded
	// window of documents that may need re-ingesting after a crash.
	SyncEvery int
}

func (o Options) syncEvery() int {
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// Recovery is what Open reconstructed from the data directory: the
// index loaded from the newest readable segment (already Prepared, so
// it can be published and queried immediately) and the WAL tail of
// documents ingested after that segment was written, deduplicated
// against it.
type Recovery struct {
	// Index is the segment-loaded index, nil when no segment exists yet.
	Index *mining.Index
	// SegmentGen / SegmentDocs identify the loaded segment.
	SegmentGen  uint64
	SegmentDocs int
	// WALDocs are the intact WAL records not already in the segment, in
	// append order.
	WALDocs []mining.Document
	// WALDropped counts torn-tail bytes truncated from the WAL —
	// documents inside the configured fsync window when the process
	// died, which ingest will simply re-process.
	WALDropped int64
	// SkippedSegments names segment files that failed validation and
	// were passed over for an older generation.
	SkippedSegments []string
}

// Docs returns segment documents followed by the WAL tail — everything
// durable, in the order the serving layer should re-adopt it.
func (r *Recovery) Docs() []mining.Document {
	var out []mining.Document
	if r.Index != nil {
		out = make([]mining.Document, 0, r.Index.Len()+len(r.WALDocs))
		for i := 0; i < r.Index.Len(); i++ {
			out = append(out, r.Index.Doc(i))
		}
	}
	return append(out, r.WALDocs...)
}

// IDs returns the set of durable document IDs — the ingest skip set
// for warm restarts.
func (r *Recovery) IDs() map[string]bool {
	ids := make(map[string]bool, len(r.WALDocs))
	if r.Index != nil {
		for i := 0; i < r.Index.Len(); i++ {
			ids[r.Index.Doc(i).ID] = true
		}
	}
	for _, d := range r.WALDocs {
		ids[d.ID] = true
	}
	return ids
}

// Stats is the store's operational state, surfaced on /statsz.
type Stats struct {
	SegmentGen   uint64
	SegmentPath  string
	SegmentBytes int64
	SegmentDocs  int
	WALRecords   int
	WALBytes     int64
	// LastSeal is the wall time the current segment was written by this
	// process; zero for segments inherited from an earlier run.
	LastSeal time.Time
}

// Store is one data directory: at most one segment lineage plus the
// ingest WAL. Methods are safe for concurrent use (one ingest writer,
// many stats readers).
type Store struct {
	dir       string
	syncEvery int

	mu       sync.Mutex
	rec      *Recovery
	wal      *os.File
	walLen   int64
	walRecs  int
	unsynced int
	segGen   uint64 // generation of the loaded/serving segment
	maxGen   uint64 // highest generation present on disk (damaged ones included)
	segPath  string
	segBytes int64
	segDocs  int
	lastSeal time.Time
}

// Open prepares a data directory for serving: creates it if missing,
// removes orphaned temp files from interrupted segment writes, loads
// the newest readable segment (falling back across generations if the
// newest is damaged), replays the WAL tail, truncates any torn record,
// and leaves the WAL open for append. The recovered state is available
// via Recovered.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	s := &Store{dir: dir, syncEvery: opts.syncEvery()}
	if err := s.cleanOrphans(); err != nil {
		return nil, err
	}
	rec := &Recovery{}
	gens, err := s.scanSegments()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		// New segments number past every file present, including damaged
		// ones a recovery skipped — names never collide.
		s.maxGen = gens[len(gens)-1]
	}
	for i := len(gens) - 1; i >= 0; i-- {
		path := s.segmentPath(gens[i])
		ix, size, err := LoadSegment(path)
		if err != nil {
			if !IsCorrupt(err) {
				return nil, err
			}
			rec.SkippedSegments = append(rec.SkippedSegments, filepath.Base(path))
			continue
		}
		rec.Index, rec.SegmentGen, rec.SegmentDocs = ix, gens[i], ix.Len()
		s.segGen, s.segPath, s.segBytes, s.segDocs = gens[i], path, size, ix.Len()
		break
	}
	walPath := filepath.Join(dir, "wal.log")
	walDocs, goodLen, dropped, err := replayWAL(walPath)
	if err != nil {
		return nil, err
	}
	rec.WALDropped = dropped
	seen := map[string]bool{}
	if rec.Index != nil {
		for i := 0; i < rec.Index.Len(); i++ {
			seen[rec.Index.Doc(i).ID] = true
		}
	}
	for _, d := range walDocs {
		// A crash between segment rename and WAL reset leaves both
		// holding the same documents; the segment wins.
		if !seen[d.ID] {
			seen[d.ID] = true
			rec.WALDocs = append(rec.WALDocs, d)
		}
	}
	f, goodLen, err := openWALForAppend(walPath, goodLen)
	if err != nil {
		return nil, err
	}
	s.wal, s.walLen, s.walRecs = f, goodLen, len(walDocs)
	s.rec = rec
	return s, nil
}

// Recovered returns what Open reconstructed from disk.
func (s *Store) Recovered() *Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// cleanOrphans removes *.tmp files left by interrupted atomic writes.
func (s *Store) cleanOrphans() error {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return fmt.Errorf("store: scanning temp files: %w", err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: removing orphaned %s: %w", m, err)
		}
	}
	return nil
}

func (s *Store) segmentPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%016d.seg", gen))
}

// scanSegments returns the segment generations present, ascending.
func (s *Store) scanSegments() ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "seg-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning segments: %w", err)
	}
	var gens []uint64
	for _, m := range matches {
		base := filepath.Base(m)
		var gen uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(base, ".seg"), "seg-%d", &gen); err != nil {
			continue // not ours
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// LoadSegment reads and validates one segment file into a Prepared,
// query-ready index. Decode errors satisfy IsCorrupt.
func LoadSegment(path string) (*mining.Index, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading segment: %w", err)
	}
	snap, err := DecodeSegment(data)
	if err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", filepath.Base(path), err)
	}
	ix, err := mining.FromSnapshot(snap)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: store: segment %s: %v", errCorrupt, filepath.Base(path), err)
	}
	ix.Prepare()
	return ix, int64(len(data)), nil
}

// WriteSegment atomically persists a sealed index as the next segment
// generation: encode, write to a temp file, fsync, rename into place,
// fsync the directory. Older generations beyond one fallback are
// pruned. The WAL is untouched — call ResetWAL once the segment is
// durable (a crash in between is handled by recovery's dedup).
func (s *Store) WriteSegment(ix *mining.Index) (Stats, error) {
	data := EncodeSegment(ix.Export())
	s.mu.Lock()
	gen := max(s.segGen, s.maxGen) + 1
	s.mu.Unlock()

	path := s.segmentPath(gen)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return Stats{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Stats{}, fmt.Errorf("store: publishing segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return Stats{}, err
	}

	s.mu.Lock()
	s.segGen, s.maxGen = gen, gen
	s.segPath, s.segBytes, s.segDocs = path, int64(len(data)), ix.Len()
	s.lastSeal = time.Now()
	s.mu.Unlock()

	// Keep the previous generation as a fallback against latent media
	// corruption; prune everything older.
	gens, err := s.scanSegments()
	if err == nil {
		for _, g := range gens {
			if g+1 < gen {
				os.Remove(s.segmentPath(g))
			}
		}
	}
	return s.Stats(), nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}

// AppendWAL logs one ingested document, fsyncing on the configured
// cadence. Called from the single ingest goroutine.
func (s *Store) AppendWAL(doc mining.Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: AppendWAL on a closed store")
	}
	rec := appendWALRecord(nil, doc)
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	s.walLen += int64(len(rec))
	s.walRecs++
	s.unsynced++
	if s.unsynced >= s.syncEvery {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		s.unsynced = 0
	}
	return nil
}

// SyncWAL forces any buffered-in-kernel WAL records to disk regardless
// of the cadence.
func (s *Store) SyncWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil || s.unsynced == 0 {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	s.unsynced = 0
	return nil
}

// ResetWAL empties the log — every record is now covered by a durable
// segment.
func (s *Store) ResetWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: ResetWAL on a closed store")
	}
	if err := s.wal.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if _, err := s.wal.Seek(walHeaderLen, 0); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing reset WAL: %w", err)
	}
	s.walLen, s.walRecs, s.unsynced = walHeaderLen, 0, 0
	return nil
}

// Stats returns the store's current persistence state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		SegmentGen:   s.segGen,
		SegmentPath:  s.segPath,
		SegmentBytes: s.segBytes,
		SegmentDocs:  s.segDocs,
		WALRecords:   s.walRecs,
		WALBytes:     s.walLen,
		LastSeal:     s.lastSeal,
	}
}

// Close syncs and closes the WAL. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}
