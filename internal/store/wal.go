package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

// Write-ahead log, version 1. The WAL extends the pipeline's failure
// semantics (PR 2: in-process retries, dead-letter budgets) across
// process death: every document the ingest loop accepts is appended
// here before it is only held in RAM, so a crashed daemon restarts from
// segment ∪ WAL-tail instead of losing the stream.
//
//	header   magic "BVWL" | version uint32 LE
//	record   uvarint payload length | payload | CRC-32 (IEEE, over the
//	         payload) uint32 LE
//	payload  one document with inline strings: id · time varint ·
//	         concepts (count, then category · canonical · start · end) ·
//	         fields (count, key-sorted, then name · value)
//
// Records are self-checking and independently decodable, so replay
// tolerates the one failure mode an append-only log has: a torn tail
// from a crash mid-write (or mid-fsync-window). Replay stops at the
// first record that is short or fails its CRC, reports how many bytes
// it dropped, and the writer truncates the file back to the last good
// record before appending again.

var walMagic = [4]byte{'B', 'V', 'W', 'L'}

const (
	walVersion   = 1
	walHeaderLen = 8
)

// appendWALRecord encodes one document as a WAL record into buf.
func appendWALRecord(buf []byte, doc mining.Document) []byte {
	w := &writer{buf: make([]byte, 0, 256)}
	w.str(doc.ID)
	w.varint(int64(doc.Time))
	w.uvarint(uint64(len(doc.Concepts)))
	for _, c := range doc.Concepts {
		w.str(c.Category)
		w.str(c.Canonical)
		w.varint(int64(c.Start))
		w.varint(int64(c.End))
	}
	keys := make([]string, 0, len(doc.Fields))
	for k := range doc.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(doc.Fields[k])
	}

	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.buf)))
	buf = append(buf, hdr[:n]...)
	buf = append(buf, w.buf...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(w.buf))
}

// decodeWALPayload parses one record payload back into a document.
func decodeWALPayload(payload []byte) (mining.Document, error) {
	r := &reader{buf: payload}
	var doc mining.Document
	var err error
	if doc.ID, err = r.str(); err != nil {
		return doc, err
	}
	tm, err := r.varint()
	if err != nil {
		return doc, err
	}
	doc.Time = int(tm)
	nc, err := r.count("concept")
	if err != nil {
		return doc, err
	}
	if nc > 0 {
		doc.Concepts = make([]annotate.Concept, nc)
		for i := range doc.Concepts {
			c := &doc.Concepts[i]
			if c.Category, err = r.str(); err != nil {
				return doc, err
			}
			if c.Canonical, err = r.str(); err != nil {
				return doc, err
			}
			start, err := r.varint()
			if err != nil {
				return doc, err
			}
			end, err := r.varint()
			if err != nil {
				return doc, err
			}
			c.Start, c.End = int(start), int(end)
		}
	}
	nf, err := r.count("field")
	if err != nil {
		return doc, err
	}
	if nf > 0 {
		doc.Fields = make(map[string]string, nf)
		for i := 0; i < nf; i++ {
			k, err := r.str()
			if err != nil {
				return doc, err
			}
			v, err := r.str()
			if err != nil {
				return doc, err
			}
			if _, dup := doc.Fields[k]; dup {
				return doc, corruptf("WAL document %q repeats field %q", doc.ID, k)
			}
			doc.Fields[k] = v
		}
	}
	if r.remaining() != 0 {
		return doc, corruptf("%d trailing bytes in WAL record for %q", r.remaining(), doc.ID)
	}
	return doc, nil
}

// replayWAL reads every intact record from a WAL file. It returns the
// decoded documents, the byte offset just past the last good record
// (the truncation point for re-opening the log for append), and the
// number of torn-tail bytes dropped. A missing file is an empty log. A
// bad header is corruption — unlike a torn tail, it means the file was
// never a WAL, and silently treating it as empty could shadow data.
func replayWAL(path string) (docs []mining.Document, goodLen int64, dropped int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("store: reading WAL: %w", err)
	}
	return replayWALData(data)
}

// replayWALData is replayWAL over in-memory bytes (also the fuzz
// surface: it must error, never panic, on arbitrary input).
func replayWALData(data []byte) (docs []mining.Document, goodLen int64, dropped int64, err error) {
	if len(data) < walHeaderLen {
		if len(data) == 0 {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, corruptf("WAL header truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != walMagic {
		return nil, 0, 0, corruptf("bad WAL magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != walVersion {
		return nil, 0, 0, corruptf("unsupported WAL version %d (want %d)", v, walVersion)
	}
	off := int64(walHeaderLen)
	for off < int64(len(data)) {
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 {
			break // torn tail: length prefix incomplete
		}
		rem := int64(len(data)) - off - int64(n)
		if rem < 4 || plen > uint64(rem-4) {
			break // torn tail: record shorter than payload + CRC
		}
		start := off + int64(n)
		payload := data[start : start+int64(plen)]
		want := binary.LittleEndian.Uint32(data[start+int64(plen) : start+int64(plen)+4])
		if crc32.ChecksumIEEE(payload) != want {
			break // torn or bit-flipped record
		}
		doc, derr := decodeWALPayload(payload)
		if derr != nil {
			// CRC passed but the payload does not parse: written by a
			// different codec, not a torn tail. Refuse the whole log.
			return nil, 0, 0, fmt.Errorf("store: WAL record at offset %d: %w", off, derr)
		}
		docs = append(docs, doc)
		off = start + int64(plen) + 4
	}
	return docs, off, int64(len(data)) - off, nil
}

// openWALForAppend opens (creating if needed) the WAL positioned for
// appending at goodLen, truncating any torn tail found by replay.
func openWALForAppend(path string, goodLen int64) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening WAL: %w", err)
	}
	if goodLen < walHeaderLen {
		// Fresh or empty file: (re)write the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: truncating WAL: %w", err)
		}
		hdr := append([]byte{}, walMagic[:]...)
		hdr = binary.LittleEndian.AppendUint32(hdr, walVersion)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: writing WAL header: %w", err)
		}
		goodLen = walHeaderLen
	} else if err := f.Truncate(goodLen); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: truncating WAL torn tail: %w", err)
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: seeking WAL: %w", err)
	}
	return f, goodLen, nil
}
