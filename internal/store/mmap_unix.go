//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps a file read-only and returns the mapping plus its
// release function. Empty files yield a nil slice (checkEnvelope
// rejects them as too short, with no mapping to release).
func mmapFile(path string) ([]byte, func([]byte) error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening segment for mapping: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size == 0 {
		return nil, func([]byte) error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("store: segment %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, syscall.Munmap, nil
}
