package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

// corpus builds n deterministic documents spanning every dimension
// family (several concept categories, fields, time buckets).
func corpus(n int, seed int64) []mining.Document {
	rnd := rand.New(rand.NewSource(seed))
	cats := []string{"intent", "discount", "place"}
	canon := []string{"weak start", "strong start", "aaa", "coupon", "austin"}
	outcomes := []string{"reservation", "unbooked", "service"}
	docs := make([]mining.Document, n)
	for i := range docs {
		var cs []annotate.Concept
		for j := 0; j < rnd.Intn(4); j++ {
			cs = append(cs, annotate.Concept{
				Category:  cats[rnd.Intn(len(cats))],
				Canonical: canon[rnd.Intn(len(canon))],
				Start:     rnd.Intn(20),
				End:       20 + rnd.Intn(20),
			})
		}
		docs[i] = mining.Document{
			ID:       fmt.Sprintf("doc-%05d", i),
			Concepts: cs,
			Fields: map[string]string{
				"outcome": outcomes[rnd.Intn(len(outcomes))],
				"agent":   fmt.Sprintf("A%d", rnd.Intn(5)),
			},
			Time: rnd.Intn(10),
		}
	}
	return docs
}

// sealedIndex builds the sealed, Prepared index over docs — the object
// segments persist.
func sealedIndex(docs []mining.Document) *mining.Index {
	si := mining.NewStreamIndex()
	si.AddBatch(docs)
	return si.Seal()
}

// indexQueriesEqual compares two queriers (monolithic indexes or
// segment sets) across every query family and reports the first
// divergence.
func indexQueriesEqual(t *testing.T, got, want mining.Querier) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len: got %d want %d", got.Len(), want.Len())
	}
	weak := mining.ConceptDim("intent", "weak start")
	res := mining.FieldDim("outcome", "reservation")
	conj := mining.AndDim(weak, res)
	for _, d := range []mining.Dim{weak, res, conj, mining.CategoryDim("discount")} {
		if a, b := got.Count(d), want.Count(d); a != b {
			t.Errorf("Count(%s): got %d want %d", d.Label(), a, b)
		}
		if !reflect.DeepEqual(got.Trend(d), want.Trend(d)) {
			t.Errorf("Trend(%s) diverges", d.Label())
		}
	}
	if !reflect.DeepEqual(got.DrillDown(weak, res), want.DrillDown(weak, res)) {
		t.Error("DrillDown diverges")
	}
	if !reflect.DeepEqual(got.RelativeFrequency("discount", conj), want.RelativeFrequency("discount", conj)) {
		t.Error("RelativeFrequency diverges")
	}
	rows := []mining.Dim{weak, mining.ConceptDim("intent", "strong start")}
	cols := []mining.Dim{res, mining.FieldDim("outcome", "unbooked")}
	if !reflect.DeepEqual(got.AssociateN(rows, cols, 0.95, 1), want.AssociateN(rows, cols, 0.95, 1)) {
		t.Error("Associate diverges")
	}
	for _, cat := range []string{"intent", "discount", "place"} {
		if !reflect.DeepEqual(got.ConceptsInCategory(cat), want.ConceptsInCategory(cat)) {
			t.Errorf("ConceptsInCategory(%s) diverges", cat)
		}
	}
	if !reflect.DeepEqual(got.FieldValues("outcome"), want.FieldValues("outcome")) {
		t.Error("FieldValues diverges")
	}
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	ix := sealedIndex(corpus(200, 1))
	snap, err := DecodeSegment(EncodeSegment(ix.Export()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := mining.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got.Prepare()
	indexQueriesEqual(t, got, ix)
}

func TestSegmentEncodeDeterministic(t *testing.T) {
	ix := sealedIndex(corpus(100, 2))
	if !bytes.Equal(EncodeSegment(ix.Export()), EncodeSegment(ix.Export())) {
		t.Error("two encodings of the same index differ")
	}
}

// TestSegmentDecodeRejectsDamage flips, truncates and contaminates real
// segment bytes and requires a clean error (IsCorrupt) every time.
func TestSegmentDecodeRejectsDamage(t *testing.T) {
	good := EncodeSegment(sealedIndex(corpus(60, 3)).Export())
	check := func(name string, data []byte) {
		t.Helper()
		if _, err := DecodeSegment(data); err == nil {
			t.Errorf("%s: decoder accepted damaged segment", name)
		} else if !IsCorrupt(err) {
			t.Errorf("%s: error does not satisfy IsCorrupt: %v", name, err)
		}
	}
	check("empty", nil)
	check("magic only", good[:4])
	check("truncated half", good[:len(good)/2])
	check("truncated one byte", good[:len(good)-1])
	for _, off := range []int{0, 5, segHeaderLen + 3, len(good) / 2, len(good) - 5} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		check(fmt.Sprintf("bit flip at %d", off), bad)
	}
	check("trailing garbage", append(append([]byte(nil), good...), 0xFF, 0x01))
	wrongVersion := append([]byte(nil), good...)
	wrongVersion[4] = 99
	check("wrong version", wrongVersion)
}

func TestStoreWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(150, 4)
	ix := sealedIndex(docs)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := st.Recovered(); rec.Index != nil || len(rec.WALDocs) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	info, err := st.WriteSegment(ix)
	if err != nil {
		t.Fatal(err)
	}
	if info.SegmentGen != 1 || info.SegmentDocs != len(docs) || info.SegmentBytes <= 0 {
		t.Fatalf("segment stats: %+v", info)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.Index == nil || rec.SegmentGen != 1 || len(rec.WALDocs) != 0 {
		t.Fatalf("recovery: gen=%d docs=%d wal=%d", rec.SegmentGen, rec.SegmentDocs, len(rec.WALDocs))
	}
	indexQueriesEqual(t, rec.Index, ix)
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(40, 5)
	st, err := Open(dir, Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := st.AppendWAL(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.Index != nil {
		t.Fatal("no segment was written, but recovery has one")
	}
	if !reflect.DeepEqual(rec.WALDocs, docs) {
		t.Fatalf("WAL replay returned %d docs, want %d (or content diverges)", len(rec.WALDocs), len(docs))
	}
}

// TestWALTornTail simulates a crash mid-record: appending garbage and
// cutting a record short must both replay to exactly the intact prefix,
// and the reopened WAL must truncate the tail and keep appending.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(20, 6)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[:10] {
		if err := st.AppendWAL(d); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	walPath := filepath.Join(dir, "wal.log")

	// Crash mid-write: a partial record at the tail.
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), full...)
	torn = appendWALRecord(torn, docs[10])
	torn = torn[:len(torn)-3]
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovered()
	if len(rec.WALDocs) != 10 || rec.WALDropped == 0 {
		t.Fatalf("torn replay: %d docs, %d dropped bytes", len(rec.WALDocs), rec.WALDropped)
	}
	// The torn tail must be gone: appending and replaying again yields
	// exactly 11 records.
	if err := st2.AppendWAL(docs[10]); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.Recovered().WALDocs; !reflect.DeepEqual(got, docs[:11]) {
		t.Fatalf("after truncate+append: %d docs, want 11 matching", len(got))
	}
}

// TestRecoveryDedupSegmentAndWAL covers the crash window between
// segment rename and WAL reset: both hold the same documents, and
// recovery must keep each exactly once (segment copy wins).
func TestRecoveryDedupSegmentAndWAL(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(30, 7)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := st.AppendWAL(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.WriteSegment(sealedIndex(docs)); err != nil {
		t.Fatal(err)
	}
	// Crash here: no ResetWAL.
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.Index == nil || rec.Index.Len() != len(docs) {
		t.Fatalf("segment not recovered: %+v", rec)
	}
	if len(rec.WALDocs) != 0 {
		t.Fatalf("WAL docs not deduplicated against segment: %d left", len(rec.WALDocs))
	}
	if got := len(rec.Docs()); got != len(docs) {
		t.Fatalf("Docs() = %d, want %d", got, len(docs))
	}
}

// TestSegmentFallback damages the newest segment and requires recovery
// to fall back to the previous generation.
func TestSegmentFallback(t *testing.T) {
	dir := t.TempDir()
	docsA, docsB := corpus(30, 8), corpus(45, 9)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSegment(sealedIndex(docsA)); err != nil {
		t.Fatal(err)
	}
	info, err := st.WriteSegment(sealedIndex(docsB))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a byte in the newest segment.
	data, err := os.ReadFile(info.SegmentPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(info.SegmentPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.SegmentGen != 1 || rec.Index == nil || rec.Index.Len() != len(docsA) {
		t.Fatalf("fallback failed: gen=%d docs=%v", rec.SegmentGen, rec.SegmentDocs)
	}
	if len(rec.SkippedSegments) != 1 {
		t.Fatalf("SkippedSegments = %v, want one entry", rec.SkippedSegments)
	}
	// The next segment write must not collide with the damaged gen 2.
	if info, err := st2.WriteSegment(sealedIndex(docsB)); err != nil || info.SegmentGen != 3 {
		t.Fatalf("next WriteSegment: gen=%d err=%v", info.SegmentGen, err)
	}
}

// TestOrphanCleanup: temp files from interrupted writes disappear on
// Open; real segments survive.
func TestOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSegment(sealedIndex(corpus(10, 10))); err != nil {
		t.Fatal(err)
	}
	st.Close()
	orphan := filepath.Join(dir, "seg-0000000000000002.seg.tmp")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned temp file survived Open")
	}
	if rec := st2.Recovered(); rec.Index == nil || rec.Index.Len() != 10 {
		t.Error("real segment did not survive orphan cleanup")
	}
}

// TestSegmentPruning: after several seals only the newest segment and
// one fallback generation remain on disk.
func TestSegmentPruning(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 4; i++ {
		if _, err := st.WriteSegment(sealedIndex(corpus(10+i, int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.scanSegments()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []uint64{3, 4}) {
		t.Fatalf("segments on disk after pruning: %v, want [3 4]", gens)
	}
}

// TestResetWAL: records vanish, the header survives, appends keep
// working.
func TestResetWAL(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(12, 11)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := st.AppendWAL(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.ResetWAL(); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.WALRecords != 0 || s.WALBytes != walHeaderLen {
		t.Fatalf("stats after reset: %+v", s)
	}
	if err := st.AppendWAL(docs[0]); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Recovered().WALDocs; len(got) != 1 || got[0].ID != docs[0].ID {
		t.Fatalf("replay after reset+append: %v", got)
	}
}

// TestWALRejectsForeignFile: a wal.log that was never a WAL must error,
// not silently read as empty.
func TestWALRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !IsCorrupt(err) {
		t.Fatalf("Open on foreign wal.log: err=%v, want corrupt", err)
	}
}
