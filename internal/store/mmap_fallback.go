//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapFile on platforms without a usable mmap reads the whole file
// into memory. The laziness of the mapped reader still holds — decode
// work is deferred and cached the same way — only the residency
// advantage is lost.
func mmapFile(path string) ([]byte, func([]byte) error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading segment for mapping: %w", err)
	}
	return data, func([]byte) error { return nil }, nil
}
