package core

import (
	"fmt"
	"strings"
	"testing"

	"bivoc/internal/asr"
	"bivoc/internal/synth"
)

func fastWorld() synth.CarRentalConfig {
	cfg := synth.DefaultCarRentalConfig()
	cfg.NumAgents = 20
	cfg.NumCustomers = 80
	cfg.CallsPerDay = 150
	cfg.Days = 4
	return cfg
}

func TestClassifyIntent(t *testing.T) {
	greeting := strings.Fields("thank you for calling please tell me how can i help you")
	strong := append(append([]string{}, greeting...), strings.Fields("i would like to make a booking")...)
	weak := append(append([]string{}, greeting...), strings.Fields("can i know the rates for a car")...)
	service := append(append([]string{}, greeting...), strings.Fields("i want to change my address")...)
	if got := ClassifyIntent(strong); got != IntentStrongConcept {
		t.Errorf("strong → %q", got)
	}
	if got := ClassifyIntent(weak); got != IntentWeakConcept {
		t.Errorf("weak → %q", got)
	}
	if got := ClassifyIntent(service); got != "" {
		t.Errorf("service → %q", got)
	}
	if got := ClassifyIntent(nil); got != "" {
		t.Errorf("empty → %q", got)
	}
}

func TestClassifyIntentTieGoesWeak(t *testing.T) {
	// "can i know the rates for booking a car": booking (strong) + know,
	// rates (weak) → weak wins on count; engineered tie also goes weak.
	tie := strings.Fields("i want to book what rate")
	if got := ClassifyIntent(tie); got != IntentWeakConcept {
		t.Errorf("tie → %q", got)
	}
}

func TestAnnotateTranscriptConcepts(t *testing.T) {
	en := BuildCarRentalAnnotator()
	transcript := strings.Fields(
		"thank you for calling please tell me how can i help you " +
			"i want to book a car i am looking for a seven seater in new york " +
			"i can offer you a discount that is a good rate")
	cs := AnnotateTranscript(en, transcript)
	var cats []string
	for _, c := range cs {
		cats = append(cats, c.Category)
	}
	joined := strings.Join(cats, ",")
	for _, want := range []string{CatIntent, CatVehicle, CatPlace, CatDiscount, CatValue} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing category %s in %v", want, cats)
		}
	}
	// The vehicle concept must be canonicalized.
	for _, c := range cs {
		if c.Category == CatVehicle && c.Canonical != "suv" {
			t.Errorf("seven seater → %q", c.Canonical)
		}
	}
}

func TestRunCallAnalysisReferenceMode(t *testing.T) {
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.UseASR = false
	ca, err := RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Index.Len() != len(ca.World.Calls) {
		t.Fatalf("indexed %d of %d calls", ca.Index.Len(), len(ca.World.Calls))
	}

	t3 := ca.IntentOutcomeTable()
	strongConv := t3.Cells[0][0].RowShare
	weakConv := t3.Cells[1][0].RowShare
	if strongConv <= weakConv {
		t.Errorf("Table III shape broken: strong %v <= weak %v", strongConv, weakConv)
	}
	if strongConv < 0.5 || strongConv > 0.8 {
		t.Errorf("strong conversion %v out of plausible band", strongConv)
	}
	if weakConv < 0.15 || weakConv > 0.5 {
		t.Errorf("weak conversion %v out of plausible band", weakConv)
	}

	t4 := ca.AgentUtteranceTable()
	valueConv := t4.Cells[0][0].RowShare
	discConv := t4.Cells[1][0].RowShare
	if discConv <= valueConv {
		t.Errorf("Table IV shape broken: discount %v <= value %v", discConv, valueConv)
	}
}

func TestRunCallAnalysisLocationVehicleTable(t *testing.T) {
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.UseASR = false
	ca, err := RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2 := ca.LocationVehicleTable()
	if len(t2.Rows) != len(synth.Cities()) || len(t2.Cols) != len(synth.VehicleTypes()) {
		t.Fatalf("table shape %dx%d", len(t2.Rows), len(t2.Cols))
	}
	total := 0
	for _, row := range t2.Cells {
		for _, cell := range row {
			total += cell.Ncell
		}
	}
	if total == 0 {
		t.Error("location×vehicle table is empty")
	}
}

func TestRunCallAnalysisWithASRPreservesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.World.CallsPerDay = 60
	cfg.World.Days = 2
	cfg.Channel = asr.TelephoneChannel
	cfg.Decoder.BeamWidth = 96
	ca, err := RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3 := ca.IntentOutcomeTable()
	strongConv := t3.Cells[0][0].RowShare
	weakConv := t3.Cells[1][0].RowShare
	if t3.Cells[0][0].Nver == 0 || t3.Cells[1][0].Nver == 0 {
		t.Fatal("no intents detected on ASR output")
	}
	if strongConv <= weakConv {
		t.Errorf("ASR Table III shape broken: strong %v <= weak %v", strongConv, weakConv)
	}
}

func TestRunTrainingExperiment(t *testing.T) {
	cfg := DefaultTrainingConfig()
	cfg.World.NumAgents = 90
	cfg.World.NumCustomers = 200
	cfg.World.CallsPerDay = 250
	cfg.BeforeDays = 8
	cfg.AfterDays = 8
	cfg.TrainedCount = 20
	res, err := RunTrainingExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Uplift <= 0 {
		t.Errorf("training uplift %v should be positive", res.Uplift)
	}
	if res.BeforeGap > res.Uplift {
		t.Errorf("before-gap %v exceeds uplift %v", res.BeforeGap, res.Uplift)
	}
	if res.TTest.T <= 0 {
		t.Errorf("t statistic %v should favour the trained group", res.TTest.T)
	}
	if len(res.Before) != 90 || len(res.After) != 90 {
		t.Error("per-agent windows incomplete")
	}
	trained := 0
	for _, a := range res.After {
		if a.Trained {
			trained++
		}
	}
	if trained != 20 {
		t.Errorf("trained agents in after-window: %d", trained)
	}
}

func TestRunTrainingExperimentValidation(t *testing.T) {
	if _, err := RunTrainingExperiment(TrainingConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestAgentWindowStatsMetrics(t *testing.T) {
	a := AgentWindowStats{Reservations: 30, Unbooked: 60}
	if a.ConversionRate() != 1.0/3.0 {
		t.Errorf("conversion = %v", a.ConversionRate())
	}
	if a.ReservationRatio() != 0.5 {
		t.Errorf("ratio = %v", a.ReservationRatio())
	}
	empty := AgentWindowStats{}
	if empty.ConversionRate() != 0 || empty.ReservationRatio() != 0 {
		t.Error("empty stats should be zero")
	}
	allBooked := AgentWindowStats{Reservations: 5}
	if allBooked.ReservationRatio() != 5 {
		t.Errorf("zero-unbooked ratio = %v", allBooked.ReservationRatio())
	}
}

func TestRunASRExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	cfg := DefaultASRExperimentConfig()
	cfg.NumCalls = 25
	cfg.Decoder.BeamWidth = 96
	res, err := RunASRExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall <= 0 || res.Overall >= 1 {
		t.Errorf("overall WER %v implausible", res.Overall)
	}
	if res.Names <= res.Overall {
		t.Errorf("Table I shape: names WER %v should exceed overall %v", res.Names, res.Overall)
	}
	if res.Utterances != 25 || res.RefWords == 0 {
		t.Errorf("corpus counters wrong: %+v", res)
	}
}

func TestRunSecondPassExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	cfg := DefaultSecondPassConfig()
	cfg.NumCalls = 25
	cfg.Decoder.BeamWidth = 96
	res, err := RunSecondPassExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement < 0 {
		t.Errorf("second pass should not hurt: %+v", res)
	}
	if res.LinkedCalls == 0 {
		t.Error("no calls linked to the database")
	}
	if res.SecondPassNameAcc <= 0 || res.SecondPassNameAcc > 1 {
		t.Errorf("name accuracy %v out of range", res.SecondPassNameAcc)
	}
}

func TestRunChurnExperiment(t *testing.T) {
	cfg := DefaultChurnExperimentConfig()
	cfg.World.NumCustomers = 600
	cfg.World.Emails = 1800
	cfg.World.SMS = 0
	res, err := RunChurnExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spam == 0 {
		t.Error("no spam detected in a corpus that contains spam")
	}
	if res.UnlinkableRate < 0.05 || res.UnlinkableRate > 0.45 {
		t.Errorf("unlinkable rate %v far from the paper's ≈0.18", res.UnlinkableRate)
	}
	if res.LinkCorrect < 0.7 {
		t.Errorf("linking accuracy %v too low", res.LinkCorrect)
	}
	if res.ChurnersInEval > 0 && res.ChurnerRecall < 0.25 {
		t.Errorf("churner recall %v too low (paper: 0.536)", res.ChurnerRecall)
	}
	if res.ChurnerRecall > 0.9 {
		t.Errorf("churner recall %v implausibly high — identity leak?", res.ChurnerRecall)
	}
	if len(res.TopFeatures) == 0 {
		t.Error("no churn features learned")
	}
}

func TestChurnExperimentSMSChannel(t *testing.T) {
	cfg := DefaultChurnExperimentConfig()
	cfg.Channel = "sms"
	cfg.World.NumCustomers = 250
	cfg.World.Emails = 0
	cfg.World.SMS = 900
	res, err := RunChurnExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 900 {
		t.Errorf("messages = %d", res.Messages)
	}
	if res.Linked == 0 {
		t.Error("no SMS linked")
	}
}

func TestRunCallAnalysisNotesChannel(t *testing.T) {
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.UseNotes = true
	ca, err := RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Recognizer != nil {
		t.Error("notes mode should not build a recognizer")
	}
	t3 := ca.IntentOutcomeTable()
	strongConv := t3.Cells[0][0].RowShare
	weakConv := t3.Cells[1][0].RowShare
	if t3.Cells[0][0].Nver == 0 || t3.Cells[1][0].Nver == 0 {
		t.Fatal("no intents detected in agent notes")
	}
	if strongConv <= weakConv {
		t.Errorf("notes-channel Table III shape broken: strong %v <= weak %v", strongConv, weakConv)
	}
	t4 := ca.AgentUtteranceTable()
	if t4.Cells[1][0].Nver == 0 {
		t.Error("no discount concepts detected in notes")
	}
	if t4.Cells[1][0].RowShare <= t4.Cells[0][0].RowShare {
		t.Errorf("notes-channel Table IV shape broken: discount %v <= value %v",
			t4.Cells[1][0].RowShare, t4.Cells[0][0].RowShare)
	}
}

func TestAgentNotesDeterministicAndNoisy(t *testing.T) {
	world, err := synth.NewCarRentalWorld(fastWorld())
	if err != nil {
		t.Fatal(err)
	}
	calls := world.GenerateCalls(0, 1)
	notes := world.AgentNotes(calls)
	if len(notes) != len(calls) {
		t.Fatalf("%d notes for %d calls", len(notes), len(calls))
	}
	for i, n := range notes {
		if n == "" {
			t.Fatalf("empty note for call %s", calls[i].ID)
		}
	}
	// Deterministic: regenerating the same world yields identical notes.
	world2, _ := synth.NewCarRentalWorld(fastWorld())
	calls2 := world2.GenerateCalls(0, 1)
	notes2 := world2.AgentNotes(calls2)
	for i := range notes {
		if notes[i] != notes2[i] {
			t.Fatalf("note %d differs across identical seeds", i)
		}
	}
	// Shorthand should be visible somewhere in the corpus.
	shorthand := false
	for _, n := range notes {
		if strings.Contains(n, "cust") && !strings.Contains(n, "customer") {
			shorthand = true
			break
		}
	}
	if !shorthand {
		t.Error("agent-note noise produced no shorthand at all")
	}
}

func TestParallelTranscriptionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.World.CallsPerDay = 30
	base.World.Days = 1
	base.Channel = asr.TelephoneChannel
	base.Decoder.BeamWidth = 96

	run := func(workers int) [][]string {
		cfg := base
		cfg.Workers = workers
		ca, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ca.Transcripts
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatal("transcript counts differ")
	}
	for i := range seq {
		if strings.Join(seq[i], " ") != strings.Join(par[i], " ") {
			t.Fatalf("call %d transcript differs between 1 and 4 workers", i)
		}
	}
}

// renderAll fingerprints every report surface of a call analysis.
func renderAll(ca *CallAnalysis) string {
	out := ca.IntentOutcomeTable().Render()
	out += ca.AgentUtteranceTable().Render()
	out += ca.LocationVehicleTable().Render()
	for _, r := range ca.WeakStartConversionDrivers() {
		out += r.Concept + "|"
	}
	return out
}

// TestPipelineWorkerCountInvariance is the determinism acceptance
// criterion: the streaming pipeline at Workers ∈ {1, 4, 8} must produce
// byte-identical reports for the same seed.
func TestPipelineWorkerCountInvariance(t *testing.T) {
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.UseASR = false
	renders := map[int]string{}
	for _, w := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = w
		ca, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		renders[w] = renderAll(ca)
		// The sealed index must also be positionally deterministic.
		if got := ca.Index.Len(); got != len(ca.World.Calls) {
			t.Fatalf("workers=%d indexed %d docs, want %d", w, got, len(ca.World.Calls))
		}
	}
	if renders[1] != renders[4] || renders[1] != renders[8] {
		t.Fatalf("reports differ across worker counts:\n-- w=1 --\n%s\n-- w=4 --\n%s\n-- w=8 --\n%s",
			renders[1], renders[4], renders[8])
	}
}

// TestPipelineWorkerCountInvarianceASR repeats the invariance check with
// the recognizer in the loop — the stage whose per-call RNG substreams
// make or break determinism.
func TestPipelineWorkerCountInvarianceASR(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.World.CallsPerDay = 25
	base.World.Days = 2
	base.Channel = asr.TelephoneChannel
	base.Decoder.BeamWidth = 96
	renders := map[int]string{}
	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		ca, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		renders[w] = renderAll(ca)
	}
	if renders[1] != renders[4] {
		t.Fatal("ASR-mode reports differ between 1 and 4 workers")
	}
}

// TestPipelineNotesModeWorkerInvariance covers the notes channel, whose
// noise stream is keyed per call id.
func TestPipelineNotesModeWorkerInvariance(t *testing.T) {
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.UseASR = false
	base.UseNotes = true
	renders := map[int]string{}
	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		ca, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		renders[w] = renderAll(ca)
	}
	if renders[1] != renders[4] {
		t.Fatal("notes-mode reports differ between 1 and 4 workers")
	}
}

// TestChurnPipelineWorkerInvariance: the churn experiment's clean→link
// pipeline must not let worker scheduling leak into any reported number.
func TestChurnPipelineWorkerInvariance(t *testing.T) {
	base := DefaultChurnExperimentConfig()
	base.World.NumCustomers = 300
	base.World.Emails = 700
	base.World.SMS = 0
	var results []*ChurnExperimentResult
	for _, w := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = w
		res, err := RunChurnExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		a, b := *results[0], *results[i]
		// TopFeatures is a slice; compare it first, then blank it for the
		// struct comparison.
		if strings.Join(a.TopFeatures, ",") != strings.Join(b.TopFeatures, ",") {
			t.Fatalf("top features differ across worker counts:\n%v\n%v", a.TopFeatures, b.TopFeatures)
		}
		a.TopFeatures, b.TopFeatures = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("results differ across worker counts:\n%+v\n%+v", a, b)
		}
	}
}

// TestStreamMonitorLiveQueries drives the Monitor hook: stats must be
// readable and the live index queryable while the run is in flight, and
// Done must close when the pipeline finishes.
func TestStreamMonitorLiveQueries(t *testing.T) {
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.UseASR = false
	cfg.Workers = 4
	observed := make(chan int, 1)
	doneClosed := make(chan struct{})
	cfg.Monitor = func(m *StreamMonitor) {
		maxSeen := 0
		for {
			select {
			case <-m.Done():
				select {
				case observed <- maxSeen:
				default:
				}
				close(doneClosed)
				return
			default:
				if n := m.Live().Len(); n > maxSeen {
					maxSeen = n
				}
				for _, st := range m.StageStats() {
					if st.Errors != 0 {
						panic("unexpected stage error")
					}
				}
			}
		}
	}
	ca, err := RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-doneClosed:
	default:
		t.Fatal("monitor still running after RunCallAnalysis returned")
	}
	if maxSeen := <-observed; maxSeen == 0 {
		t.Fatal("monitor never observed a live document")
	}
	if ca.Index.Len() != len(ca.World.Calls) {
		t.Fatalf("indexed %d calls, want %d", ca.Index.Len(), len(ca.World.Calls))
	}
}
