package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bivoc/internal/annotate"
	"bivoc/internal/clean"
	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
	"bivoc/internal/rng"
	"bivoc/internal/textproc"
)

// StreamMonitor gives a running streaming pipeline's live surfaces to an
// observer: per-stage counters and the query-while-indexing view of the
// mining index. Obtained via CallAnalysisConfig.Monitor.
type StreamMonitor struct {
	stats func() []pipeline.StageStats
	live  *mining.StreamIndex
	done  chan struct{}
}

// StageStats snapshots the pipeline's per-stage counters (in/out/skip/
// errors, queue depth, latency). Safe to call while the run is in flight.
func (m *StreamMonitor) StageStats() []pipeline.StageStats { return m.stats() }

// Live returns the streaming mining index. Every query on it (Counts,
// Associate, RelativeFrequency, ...) answers over the documents indexed
// so far — reporting stays available while data keeps arriving.
func (m *StreamMonitor) Live() *mining.StreamIndex { return m.live }

// Done is closed when the pipeline finishes (drain or abort). Monitor
// callbacks should select on it and return promptly.
func (m *StreamMonitor) Done() <-chan struct{} { return m.done }

// callJob carries one call through the pipeline stages; idx keys results
// back to World.Calls order so output is deterministic regardless of
// which worker handled which call.
type callJob struct {
	idx        int
	transcript []string
	fields     map[string]string
	concepts   []annotate.Concept
}

// buildCallPipeline assembles Figure 3 as the staged concurrent
// pipeline:
//
//	source(calls) → transcribe → link → annotate → sink
//
// transcribe and annotate carry the CPU weight and get cfg.Workers
// workers each; link only attaches warehouse fields and runs single.
// Worker-count invariance holds because every stochastic step draws from
// a per-call RNG substream keyed by call ID, results are keyed by call
// index, and sealed indexes are rebuilt in ID order.
//
// The returned toDoc projects a finished job onto the mining document
// for that call. Both the batch path (analyzeStreaming) and the serving
// path (NewServeServer) are sinks over this one pipeline.
func (ca *CallAnalysis) buildCallPipeline() (p *pipeline.Pipeline[callJob], toDoc func(callJob) mining.Document) {
	en := BuildCarRentalAnnotator()
	cleaner := clean.NewCleaner()
	world := ca.World
	calls := world.Calls
	workers := ca.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	decodeRnd := rng.New(ca.Config.World.Seed).SplitString("asr-noise")

	transcribe := func(ctx context.Context, j callJob) (callJob, error) {
		call := calls[j.idx]
		switch {
		case ca.Config.UseNotes:
			// The notes channel is cleaned like SMS: shorthand normalized
			// through the lingo dictionaries before analysis.
			j.transcript = textproc.Words(cleaner.NormalizeSMS(world.AgentNote(call)))
		case ca.Recognizer != nil:
			hyp, err := ca.Recognizer.Transcribe(decodeRnd.SplitString(call.ID), call.Transcript)
			if err != nil {
				return j, fmt.Errorf("core: transcribing %s: %w", call.ID, err)
			}
			j.transcript = hyp
		default:
			j.transcript = call.Transcript
		}
		return j, nil
	}
	link := func(ctx context.Context, j callJob) (callJob, error) {
		call := calls[j.idx]
		agent := world.Agents[call.AgentIdx]
		trained := "no"
		if agent.Trained {
			trained = "yes"
		}
		j.fields = map[string]string{
			"outcome": call.Outcome,
			"agent":   agent.ID,
			"trained": trained,
		}
		return j, nil
	}
	annotateStage := func(ctx context.Context, j callJob) (callJob, error) {
		j.concepts = AnnotateTranscript(en, j.transcript)
		return j, nil
	}

	stages := []pipeline.Stage[callJob]{
		{Name: "transcribe", Workers: workers, Fn: transcribe},
		{Name: "link", Workers: 1, Fn: link},
		{Name: "annotate", Workers: workers, Fn: annotateStage},
	}
	keyFn := func(j callJob) string { return calls[j.idx].ID }
	if ca.Config.FaultInject != nil {
		for i := range stages {
			stages[i] = pipeline.InjectFaults(stages[i], keyFn, ca.Config.FaultInject)
		}
	}
	p = pipeline.New[callJob]("call-analysis", stages...).
		WithKey(keyFn).
		WithSeed(ca.Config.World.Seed).
		WithFaultTolerance(ca.Config.FaultTolerance)
	toDoc = func(j callJob) mining.Document {
		return mining.Document{
			ID:       calls[j.idx].ID,
			Concepts: j.concepts,
			Fields:   j.fields,
			Time:     calls[j.idx].Day,
		}
	}
	return p, toDoc
}

// callSource feeds every call of the world into the pipeline.
func (ca *CallAnalysis) callSource() pipeline.Source[callJob] {
	return pipeline.IndexedSource(len(ca.World.Calls), func(i int) callJob { return callJob{idx: i} })
}

// analyzeStreaming runs the call pipeline to completion, streaming every
// finished call into a live mining index and sealing it at the end.
func (ca *CallAnalysis) analyzeStreaming(ctx context.Context) error {
	calls := ca.World.Calls
	p, toDoc := ca.buildCallPipeline()

	live := mining.NewStreamIndex()
	transcripts := make([][]string, len(calls))
	sink := func(j callJob) error {
		transcripts[j.idx] = j.transcript
		live.Add(toDoc(j))
		return nil
	}

	var monWG sync.WaitGroup
	var mon *StreamMonitor
	if ca.Config.Monitor != nil {
		mon = &StreamMonitor{stats: p.Stats, live: live, done: make(chan struct{})}
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			ca.Config.Monitor(mon)
		}()
	}

	err := p.Run(ctx, ca.callSource(), sink)
	if mon != nil {
		close(mon.done)
		monWG.Wait()
	}
	if err != nil {
		return err
	}
	// Dead-lettered calls never reached the sink: their transcripts stay
	// nil, and the sealed index must hold exactly the survivors — the
	// accounting invariant that separates "degraded gracefully" from
	// "silently lost data".
	ca.DeadLetters = p.DeadLetters()
	ca.Transcripts = transcripts
	ix, err := live.SealChecked(len(calls) - len(ca.DeadLetters))
	if err != nil {
		return fmt.Errorf("core: call analysis: %w", err)
	}
	ca.Index = ix
	return nil
}
