package core

import (
	"fmt"
	"strings"
	"testing"

	"bivoc/internal/linker"
)

// Naive-vs-optimized equivalence at the experiment level: flipping
// linker.UseNaiveSimilarity back to the recompute-everything oracle must
// not change a single reported byte, at every supported worker count.
// Together with the linker-level property tests this is the ISSUE's
// acceptance criterion that the hot-path rewrite is invisible to results.

func TestCallAnalysisNaiveSimilarityEquivalence(t *testing.T) {
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.UseASR = false
	defer func() { linker.UseNaiveSimilarity = false }()
	for _, w := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = w
		linker.UseNaiveSimilarity = true
		naive, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		linker.UseNaiveSimilarity = false
		fast, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if renderAll(naive) != renderAll(fast) {
			t.Errorf("workers=%d: reports differ between naive and cached similarity", w)
		}
	}
}

func TestChurnExperimentNaiveSimilarityEquivalence(t *testing.T) {
	base := DefaultChurnExperimentConfig()
	base.World.NumCustomers = 250
	base.World.Emails = 500
	base.World.SMS = 200
	defer func() { linker.UseNaiveSimilarity = false }()
	for _, w := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = w
		linker.UseNaiveSimilarity = true
		naive, err := RunChurnExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		linker.UseNaiveSimilarity = false
		fast, err := RunChurnExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *naive, *fast
		if strings.Join(a.TopFeatures, ",") != strings.Join(b.TopFeatures, ",") {
			t.Fatalf("workers=%d: top features differ:\n%v\n%v", w, a.TopFeatures, b.TopFeatures)
		}
		a.TopFeatures, b.TopFeatures = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("workers=%d: results differ between naive and cached similarity:\n%+v\n%+v", w, a, b)
		}
	}
}
