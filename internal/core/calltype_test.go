package core

import (
	"strings"
	"testing"

	"bivoc/internal/asr"
	"bivoc/internal/rng"
	"bivoc/internal/synth"
)

func TestCallTypeClassifierOnReferenceTranscripts(t *testing.T) {
	cfg := fastWorld()
	world, err := synth.NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := world.GenerateCalls(0, 2)
	test := world.GenerateCalls(2, 2)

	c := NewCallTypeClassifier()
	c.TrainFromCalls(train)
	acc, err := c.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("call-type accuracy %v on clean transcripts, want >= 0.9", acc)
	}
}

func TestCallTypeClassifierOnNoisyTranscripts(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	cfg := fastWorld()
	cfg.CallsPerDay = 40
	world, err := synth.NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := synth.BuildRecognizer(asr.CallCenterChannel, asr.DecoderConfig{BeamWidth: 96})
	if err != nil {
		t.Fatal(err)
	}
	calls := world.GenerateCalls(0, 2)
	r := rng.New(11)
	c := NewCallTypeClassifier()
	// Train on the first half of noisy transcripts, evaluate on the rest.
	var noisy []synth.Call
	for _, call := range calls {
		hyp, err := rec.Transcribe(r.SplitString(call.ID), call.Transcript)
		if err != nil {
			t.Fatal(err)
		}
		nc := call
		nc.Transcript = hyp
		noisy = append(noisy, nc)
	}
	half := len(noisy) / 2
	c.TrainFromCalls(noisy[:half])
	acc, err := c.Evaluate(noisy[half:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("call-type accuracy %v on noisy transcripts, want >= 0.6", acc)
	}
}

func TestCallTypeClassifierDirectLabels(t *testing.T) {
	c := NewCallTypeClassifier()
	c.Train(strings.Fields("i want to book a car today"), CallTypeSales)
	c.Train(strings.Fields("i want to change my booking"), CallTypeService)
	c.Train(strings.Fields("i need to pick up a car"), CallTypeSales)
	c.Train(strings.Fields("please cancel my reservation"), CallTypeService)
	if got := c.Classify(strings.Fields("i want to book a full size car")); got != CallTypeSales {
		t.Errorf("sales call classified as %q", got)
	}
	if got := c.Classify(strings.Fields("cancel my reservation please")); got != CallTypeService {
		t.Errorf("service call classified as %q", got)
	}
}

func TestCallTypeEvaluateEmpty(t *testing.T) {
	c := NewCallTypeClassifier()
	if _, err := c.Evaluate(nil); err == nil {
		t.Error("empty evaluation should error")
	}
}
