package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"bivoc/internal/churn"
	"bivoc/internal/clean"
	"bivoc/internal/linker"
	"bivoc/internal/pipeline"
	"bivoc/internal/sentiment"
	"bivoc/internal/synth"
	"bivoc/internal/warehouse"
)

// ChurnExperimentConfig drives the §VI use case end to end: clean the
// email/SMS corpora, link messages to subscriber records (attaching the
// churn label from the structured database), train a classifier on the
// earlier months, and measure churner detection on the final month.
type ChurnExperimentConfig struct {
	World synth.TelecomConfig
	// Threshold is the churn-posterior decision threshold.
	Threshold float64
	// MinLinkScore is the acceptance threshold on the linker's aggregate
	// score: a best match below it counts as unlinkable. Identity
	// evidence from a full name is worth ≈1.0, so 0.9 demands a nearly
	// complete name or name-plus-phone combination — which is what keeps
	// non-customer mail unlinkable, as in the paper's 18%.
	MinLinkScore float64
	// MinLinkScoreSMS is the acceptance threshold for SMS, which rarely
	// carry a name — a full sender-number match (score ≈0.5 under
	// uniform name/phone weights) must be enough to link.
	MinLinkScoreSMS float64
	// Channel restricts the experiment ("email", "sms", or "" for both).
	Channel string
	// NormalizeSMS toggles the lingo-normalization step (ablation).
	NormalizeSMS bool
	// Workers is the per-stage parallelism of the clean→link pipeline
	// (default: GOMAXPROCS; 1 recovers the sequential path). Results are
	// identical at any worker count: stage functions are pure per message
	// and accounting runs over the corpus in its original order.
	Workers int
	// FaultTolerance threads retry/backoff, per-attempt timeout and the
	// dead-letter budget into the clean and link stages. The zero value
	// keeps fail-fast. Messages that exhaust their retries are counted
	// in ChurnExperimentResult.DeadLettered instead of crashing the
	// experiment.
	FaultTolerance pipeline.FaultTolerance
	// FaultInject, when set, wraps both stages with injected faults
	// (chaos-testing hook), keyed by (stage, message ID, attempt).
	FaultInject pipeline.FaultFn
}

// DefaultChurnExperimentConfig returns the paper-shaped configuration.
func DefaultChurnExperimentConfig() ChurnExperimentConfig {
	return ChurnExperimentConfig{
		World:           synth.DefaultTelecomConfig(),
		Threshold:       0.3,
		MinLinkScore:    0.85,
		MinLinkScoreSMS: 0.45,
		Channel:         "email",
		NormalizeSMS:    true,
	}
}

// ChurnExperimentResult reports the paper's §VI quantities.
type ChurnExperimentResult struct {
	Messages int
	// Discarded by the cleaning gate.
	Spam, NonEnglish, Empty int
	// DeadLettered counts messages dropped by the fault-tolerance layer
	// after exhausting their retries (0 unless
	// FaultTolerance.MaxDeadLetters allowed it). They are excluded from
	// every downstream rate, so Spam + NonEnglish + Empty + Linked +
	// Unlinkable + DeadLettered == Messages.
	DeadLettered int
	// Linking outcomes over gated-in messages.
	Linked, Unlinkable int
	// UnlinkableRate is Unlinkable / (Linked + Unlinkable) — the paper's
	// "Around 18% of emails could not be linked".
	UnlinkableRate float64
	// LinkCorrect is the fraction of linked messages attached to the true
	// author (measurable only in simulation).
	LinkCorrect float64
	// Customer-level detection on the evaluation month: the paper's
	// "53.6% of churners detected correctly".
	ChurnersInEval  int
	ChurnersFlagged int
	ChurnerRecall   float64
	// Message-level confusion counters on the evaluation month.
	TP, FP, TN, FN int
	// TopFeatures are the learned churn indicators.
	TopFeatures []string
	// SentimentChurners / SentimentStayers are mean polarity scores of
	// linked messages per group — §III's claim that VoC "indicate[s] the
	// level of (dis)satisfaction of the customer or his churn propensity"
	// made measurable.
	SentimentChurners float64
	SentimentStayers  float64
}

// linkedMessage is one message that survived cleaning and linking.
type linkedMessage struct {
	msg     synth.Message
	custIdx int // index into world.Customers (from LINKING, not truth)
	text    string
}

// RunChurnExperiment executes the full §VI pipeline.
func RunChurnExperiment(cfg ChurnExperimentConfig) (*ChurnExperimentResult, error) {
	return RunChurnExperimentContext(context.Background(), cfg)
}

// msgJob carries one message through the streaming clean → link stages.
// The idx keys it back to corpus order so the downstream accounting and
// training are byte-identical at any worker count.
type msgJob struct {
	idx     int
	verdict clean.Verdict
	// custIdx is the linked customer index, or -1 when unlinkable.
	// Meaningful only for VerdictKeep.
	custIdx int
	// text is the de-signatured cleaned text for the classifier.
	text string
}

// RunChurnExperimentContext is RunChurnExperiment with cancellation. The
// clean and link stages run as concurrent worker pools; per-message work
// is pure, and all stateful accounting happens afterwards in corpus
// order, so cfg.Workers never changes the result.
func RunChurnExperimentContext(ctx context.Context, cfg ChurnExperimentConfig) (*ChurnExperimentResult, error) {
	world, err := synth.NewTelecomWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	cleaner := clean.NewCleaner()
	engine, err := newSubscriberLinker(world.DB)
	if err != nil {
		return nil, err
	}
	annotators := NewCarRentalAnnotators() // same name/place inventories

	var corpus []synth.Message
	if cfg.Channel == "" || cfg.Channel == "email" {
		corpus = append(corpus, world.Emails...)
	}
	if cfg.Channel == "" || cfg.Channel == "sms" {
		corpus = append(corpus, world.SMS...)
	}

	res := &ChurnExperimentResult{Messages: len(corpus)}
	idByKey := map[string]int{}
	for i, c := range world.Customers {
		idByKey[c.ID] = i
	}
	subs := world.DB.MustTable("subscribers")

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cleanStage := func(_ context.Context, j msgJob) (msgJob, error) {
		m := corpus[j.idx]
		var cm clean.CleanedMessage
		if m.Channel == "email" {
			cm = cleaner.ProcessEmail(m.Raw)
		} else if cfg.NormalizeSMS {
			cm = cleaner.ProcessSMS(m.Raw)
		} else {
			// Ablation: gate but skip normalization.
			v := cleaner.Gate(m.Raw)
			cm = clean.CleanedMessage{Verdict: v}
			if v == clean.VerdictKeep {
				cm.Text = strings.ToLower(m.Raw)
			}
		}
		j.verdict = cm.Verdict
		j.text = cm.Text
		return j, nil
	}
	linkStage := func(_ context.Context, j msgJob) (msgJob, error) {
		j.custIdx = -1
		if j.verdict != clean.VerdictKeep {
			return j, nil
		}
		m := corpus[j.idx]
		tokens := annotators.Extract(j.text)
		minScore := cfg.MinLinkScore
		if m.Channel == "sms" {
			minScore = cfg.MinLinkScoreSMS
		}
		matches := engine.Link(tokens, 1)
		if len(matches) == 0 || matches[0].Score < minScore {
			return j, nil
		}
		j.custIdx = idByKey[subs.GetString(matches[0].Row, "id")]
		// Classify on the de-signatured text: the signature identified the
		// author for linking, but the classifier must learn churn
		// language, not author identities.
		j.text = clean.StripSignature(j.text)
		return j, nil
	}

	stages := []pipeline.Stage[msgJob]{
		{Name: "clean", Workers: workers, Fn: cleanStage},
		{Name: "link", Workers: workers, Fn: linkStage},
	}
	keyFn := func(j msgJob) string { return corpus[j.idx].ID }
	if cfg.FaultInject != nil {
		for i := range stages {
			stages[i] = pipeline.InjectFaults(stages[i], keyFn, cfg.FaultInject)
		}
	}
	p := pipeline.New[msgJob]("churn", stages...).
		WithKey(keyFn).
		WithSeed(cfg.World.Seed).
		WithFaultTolerance(cfg.FaultTolerance)
	jobs := make([]msgJob, len(corpus))
	err = p.Run(ctx,
		pipeline.IndexedSource(len(corpus), func(i int) msgJob { return msgJob{idx: i} }),
		func(j msgJob) error { jobs[j.idx] = j; return nil })
	if err != nil {
		return nil, err
	}
	// Dead-lettered messages never reached the sink; their jobs slots
	// hold zero values (which would read as VerdictKeep), so mark them
	// explicitly and account them separately from the cleaning gate.
	dead := make(map[int]bool)
	for _, j := range p.DeadItems() {
		dead[j.idx] = true
	}

	// Accounting pass in corpus order — identical to the sequential run.
	var linked []linkedMessage
	linkRight := 0
	for i, j := range jobs {
		m := corpus[i]
		if dead[i] {
			res.DeadLettered++
			continue
		}
		switch j.verdict {
		case clean.VerdictSpam:
			res.Spam++
			continue
		case clean.VerdictNonEnglish:
			res.NonEnglish++
			continue
		case clean.VerdictEmpty:
			res.Empty++
			continue
		}
		if j.custIdx < 0 {
			res.Unlinkable++
			continue
		}
		res.Linked++
		if m.CustIdx == j.custIdx {
			linkRight++
		}
		linked = append(linked, linkedMessage{msg: m, custIdx: j.custIdx, text: j.text})
	}
	if res.Linked+res.Unlinkable > 0 {
		res.UnlinkableRate = float64(res.Unlinkable) / float64(res.Linked+res.Unlinkable)
	}
	if res.Linked > 0 {
		res.LinkCorrect = float64(linkRight) / float64(res.Linked)
	}

	// Train on months before the last; evaluate on the last month. The
	// label comes from the LINKED subscriber's churn status — exactly the
	// paper's integration step.
	evalMonth := cfg.World.Months - 1
	pred := churn.NewPredictor(cfg.Threshold)
	var evalMsgs []linkedMessage
	for _, lmsg := range linked {
		labelChurn := world.Customers[lmsg.custIdx].Churned
		if lmsg.msg.Month < evalMonth {
			pred.Train(lmsg.text, labelChurn)
		} else {
			evalMsgs = append(evalMsgs, lmsg)
		}
	}
	if !pred.Trained() {
		return nil, fmt.Errorf("core: churn training set empty")
	}

	// Message-level confusion, against the hidden truth.
	flaggedCustomers := map[int]bool{}
	for _, lmsg := range evalMsgs {
		predicted := pred.Predict(lmsg.text)
		actual := lmsg.msg.FromChurner
		switch {
		case predicted && actual:
			res.TP++
		case predicted && !actual:
			res.FP++
		case !predicted && actual:
			res.FN++
		default:
			res.TN++
		}
		if predicted {
			flaggedCustomers[lmsg.custIdx] = true
		}
	}
	// Customer-level churner recall: of the true churners who wrote in
	// the evaluation month, how many were flagged?
	churnersSeen := map[int]bool{}
	for _, lmsg := range evalMsgs {
		if lmsg.msg.FromChurner && lmsg.msg.CustIdx >= 0 {
			churnersSeen[lmsg.msg.CustIdx] = true
		}
	}
	res.ChurnersInEval = len(churnersSeen)
	for idx := range churnersSeen {
		if flaggedCustomers[idx] {
			res.ChurnersFlagged++
		}
	}
	if res.ChurnersInEval > 0 {
		res.ChurnerRecall = float64(res.ChurnersFlagged) / float64(res.ChurnersInEval)
	}
	res.TopFeatures = pred.TopChurnFeatures(15)

	// Satisfaction split across all linked messages (hidden-truth
	// grouping, for the reproduction record).
	var churnTexts, stayTexts []string
	for _, lmsg := range linked {
		if lmsg.msg.FromChurner {
			churnTexts = append(churnTexts, lmsg.text)
		} else {
			stayTexts = append(stayTexts, lmsg.text)
		}
	}
	res.SentimentChurners = sentiment.ScoreCorpus(churnTexts)
	res.SentimentStayers = sentiment.ScoreCorpus(stayTexts)
	return res, nil
}

// newSubscriberLinker builds the linking engine over the subscribers
// table.
func newSubscriberLinker(db *warehouse.DB) (*linker.Engine, error) {
	return linker.NewEngine(db, linker.Config{Targets: map[linker.TokenType][]linker.Attribute{
		linker.TokName: {
			{Table: "subscribers", Column: "name"},
		},
		linker.TokDigits: {
			{Table: "subscribers", Column: "phone"},
		},
	}})
}
