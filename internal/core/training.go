package core

import (
	"fmt"
	"sort"

	"bivoc/internal/stats"
	"bivoc/internal/synth"
)

// TrainingConfig drives the §V.C agent-training experiment: 90 agents,
// 20 trained on the mined insights, compared against the untrained 70
// over before/after windows.
type TrainingConfig struct {
	World        synth.CarRentalConfig
	TrainedCount int
	// BeforeDays / AfterDays are the lengths of the two observation
	// windows (the paper used two months).
	BeforeDays int
	AfterDays  int
}

// DefaultTrainingConfig returns the paper-shaped configuration at laptop
// scale.
func DefaultTrainingConfig() TrainingConfig {
	cfg := synth.DefaultCarRentalConfig()
	cfg.CallsPerDay = 360
	return TrainingConfig{
		World:        cfg,
		TrainedCount: 20,
		BeforeDays:   20,
		AfterDays:    20,
	}
}

// AgentWindowStats holds one agent's bookings in one window.
type AgentWindowStats struct {
	AgentID      string
	Trained      bool
	Reservations int
	Unbooked     int
}

// ConversionRate returns reservations / (reservations + unbooked).
func (a AgentWindowStats) ConversionRate() float64 {
	total := a.Reservations + a.Unbooked
	if total == 0 {
		return 0
	}
	return float64(a.Reservations) / float64(total)
}

// ReservationRatio returns the paper's §V.C metric, "the ratio of the
// number of reservations to the number of unbooked calls".
func (a AgentWindowStats) ReservationRatio() float64 {
	if a.Unbooked == 0 {
		return float64(a.Reservations)
	}
	return float64(a.Reservations) / float64(a.Unbooked)
}

// TrainingResult is the outcome of the experiment.
type TrainingResult struct {
	Before, After []AgentWindowStats
	// Group means of conversion rate per window.
	TrainedBefore, ControlBefore float64
	TrainedAfter, ControlAfter   float64
	// Uplift is (trained after − control after) conversion, in points.
	Uplift float64
	// BeforeGap is the same difference before training (should be ≈0:
	// "Before training the ratios of both groups were comparable").
	BeforeGap float64
	// TTest compares per-agent after-window conversion rates of the
	// trained group against the control group (Welch).
	TTest stats.TTestResult
}

// RunTrainingExperiment generates a before window, trains the first
// TrainedCount agents, generates an after window, and compares the
// groups.
func RunTrainingExperiment(cfg TrainingConfig) (*TrainingResult, error) {
	if cfg.TrainedCount <= 0 || cfg.BeforeDays <= 0 || cfg.AfterDays <= 0 {
		return nil, fmt.Errorf("core: training config needs positive counts")
	}
	world, err := synth.NewCarRentalWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	before := world.GenerateCalls(0, cfg.BeforeDays)
	// Pick the treated group stratified by before-window performance so
	// the groups start out comparable ("Before training the ratios of
	// both groups were comparable", §V.C).
	world.TrainAgentSet(stratifiedPick(windowStats(world, before), cfg.TrainedCount))
	after := world.GenerateCalls(cfg.BeforeDays, cfg.AfterDays)

	res := &TrainingResult{
		Before: windowStats(world, before),
		After:  windowStats(world, after),
	}
	res.TrainedBefore, res.ControlBefore = groupMeans(res.Before)
	res.TrainedAfter, res.ControlAfter = groupMeans(res.After)
	res.Uplift = res.TrainedAfter - res.ControlAfter
	res.BeforeGap = res.TrainedBefore - res.ControlBefore

	var trained, control []float64
	for _, a := range res.After {
		if a.Reservations+a.Unbooked == 0 {
			continue
		}
		if a.Trained {
			trained = append(trained, a.ConversionRate())
		} else {
			control = append(control, a.ConversionRate())
		}
	}
	tt, err := stats.WelchTTest(trained, control)
	if err != nil {
		return nil, fmt.Errorf("core: t-test: %w", err)
	}
	res.TTest = tt
	return res, nil
}

// stratifiedPick sorts agents by before-window conversion and selects n
// spread evenly across the ranking, so the treated group's mean matches
// the population's.
func stratifiedPick(before []AgentWindowStats, n int) []int {
	idx := make([]int, len(before))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := before[idx[a]].ConversionRate(), before[idx[b]].ConversionRate()
		if ra != rb {
			return ra < rb
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	picked := make([]int, 0, n)
	if n == 0 {
		return picked
	}
	step := float64(len(idx)) / float64(n)
	for k := 0; k < n; k++ {
		pos := int(step*float64(k) + step/2)
		if pos >= len(idx) {
			pos = len(idx) - 1
		}
		picked = append(picked, idx[pos])
	}
	return picked
}

func windowStats(world *synth.CarRentalWorld, calls []synth.Call) []AgentWindowStats {
	byAgent := make([]AgentWindowStats, len(world.Agents))
	for i, a := range world.Agents {
		byAgent[i] = AgentWindowStats{AgentID: a.ID, Trained: a.Trained}
	}
	for _, c := range calls {
		switch c.Outcome {
		case synth.OutcomeReservation:
			byAgent[c.AgentIdx].Reservations++
		case synth.OutcomeUnbooked:
			byAgent[c.AgentIdx].Unbooked++
		}
	}
	return byAgent
}

func groupMeans(ws []AgentWindowStats) (trained, control float64) {
	var tSum, cSum float64
	var tN, cN int
	for _, a := range ws {
		if a.Reservations+a.Unbooked == 0 {
			continue
		}
		if a.Trained {
			tSum += a.ConversionRate()
			tN++
		} else {
			cSum += a.ConversionRate()
			cN++
		}
	}
	if tN > 0 {
		trained = tSum / float64(tN)
	}
	if cN > 0 {
		control = cSum / float64(cN)
	}
	return trained, control
}
