package core

import (
	"context"
	"fmt"
	"time"

	"bivoc/internal/fed"
	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
	"bivoc/internal/server"
	"bivoc/internal/store"
	"bivoc/internal/synth"
)

// ServeConfig drives the bivocd query daemon: a call-analysis pipeline
// feeding the hot-swappable serving index in internal/server.
type ServeConfig struct {
	// Analysis configures the world and the ingest pipeline exactly as in
	// RunCallAnalysis — the daemon serves the same index those runs build.
	Analysis CallAnalysisConfig
	// Addr is the HTTP listen address.
	Addr string
	// SwapInterval / SwapEvery are the snapshot publication cadences
	// (time-based and every-N-documents; see server.Config).
	SwapInterval time.Duration
	SwapEvery    int
	// MaxSegments bounds the serving index's live immutable segment
	// count; past it a background compaction merges the smallest
	// segments (0 = server default, negative = unbounded).
	MaxSegments int
	// CacheSize bounds the per-snapshot query-result cache.
	CacheSize int
	// AssociateWorkers fans each /v1/associate cell grid across this
	// many workers (0 = GOMAXPROCS); tables are byte-identical at any
	// worker count.
	AssociateWorkers int
	// DrainTimeout bounds the graceful drain on shutdown.
	DrainTimeout time.Duration
	// ShardIndex/ShardCount run the daemon as one shard of a federated
	// fleet: only calls whose document ID hashes onto ShardIndex (per
	// fed.ShardOf, out of ShardCount) are ingested — filtered before the
	// pipeline, so a shard never pays transcription or linking for
	// documents it does not own. ShardCount ≤ 1 serves everything.
	ShardIndex int
	ShardCount int
	// DataDir, when non-empty, makes the daemon durable (internal/store):
	// sealed indexes are written there as binary segments, ingested
	// documents are WAL-logged, and a restart recovers segment + WAL tail
	// instead of re-running the pipeline over already-durable calls.
	DataDir string
	// WALSyncEvery fsyncs the ingest WAL every N documents (0/1 = every
	// document; larger values trade fsync cost for a bounded re-ingest
	// window after a crash).
	WALSyncEvery int
	// MapSegments serves sealed on-disk segments from mmap-backed
	// postings with lazy decode instead of materializing them on the
	// heap: recovered segments open mapped, and each compaction swaps
	// its merged heap index for a mapped view of the bytes it just
	// wrote. Requires DataDir; query results are byte-identical either
	// way.
	MapSegments bool
	// PostingsBudget caps the bytes of lazily decoded postings the
	// mapped readers keep on the heap (0 = store default, 64 MiB;
	// negative = unbounded). Only meaningful with MapSegments.
	PostingsBudget int64
}

// DefaultServeConfig serves reference transcripts (UseASR off, so the
// daemon is ingest-light by default) on localhost with a one-second
// snapshot cadence.
func DefaultServeConfig() ServeConfig {
	a := DefaultCallAnalysisConfig()
	a.UseASR = false
	return ServeConfig{
		Analysis:     a,
		Addr:         "127.0.0.1:8080",
		SwapInterval: time.Second,
	}
}

// NewServeServer builds the query server: it generates the synthetic
// world, assembles the same staged pipeline RunCallAnalysis uses, and
// wires its sink to the server's ingest loop, with pipeline stage
// counters surfaced on /statsz. The server is unstarted; use Run (or
// Start/Shutdown).
func NewServeServer(cfg ServeConfig) (*server.Server, error) {
	if cfg.ShardCount > 1 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		return nil, fmt.Errorf("core: ShardIndex %d out of range for %d shards", cfg.ShardIndex, cfg.ShardCount)
	}
	world, err := synth.NewCarRentalWorld(cfg.Analysis.World)
	if err != nil {
		return nil, err
	}
	world.GenerateCalls(0, cfg.Analysis.World.Days)
	ca := &CallAnalysis{Config: cfg.Analysis, World: world}
	if cfg.Analysis.UseASR && !cfg.Analysis.UseNotes {
		rec, err := synth.BuildRecognizer(cfg.Analysis.Channel, cfg.Analysis.Decoder)
		if err != nil {
			return nil, err
		}
		ca.Recognizer = rec
	}
	p, toDoc := ca.buildCallPipeline()
	source := func(ctx context.Context, already func(string) bool, emit func(mining.Document) error) error {
		// Skip already-durable calls before the pipeline, not after it:
		// on a warm restart the transcribe/link/annotate stages never run
		// for recovered documents. Per-call RNG substreams are keyed by
		// call ID, so the surviving calls transcribe identically whether
		// or not their neighbors were skipped.
		// The shard filter runs here too: document IDs are call IDs, so a
		// federated shard hashes each call ID once and never transcribes a
		// call it does not own.
		calls := ca.World.Calls
		fresh := make([]int, 0, len(calls))
		for i := range calls {
			if cfg.ShardCount > 1 && fed.ShardOf(calls[i].ID, cfg.ShardCount) != cfg.ShardIndex {
				continue
			}
			if already == nil || !already(calls[i].ID) {
				fresh = append(fresh, i)
			}
		}
		src := pipeline.IndexedSource(len(fresh), func(i int) callJob { return callJob{idx: fresh[i]} })
		return p.Run(ctx, src, func(j callJob) error { return emit(toDoc(j)) })
	}
	var st *store.Store
	if cfg.DataDir != "" {
		var err error
		st, err = store.Open(cfg.DataDir, store.Options{
			SyncEvery:      cfg.WALSyncEvery,
			MapSegments:    cfg.MapSegments,
			PostingsBudget: cfg.PostingsBudget,
		})
		if err != nil {
			return nil, err
		}
	}
	return server.New(server.Config{
		Addr:             cfg.Addr,
		Source:           source,
		PipelineStats:    p.Stats,
		SwapInterval:     cfg.SwapInterval,
		SwapEvery:        cfg.SwapEvery,
		MaxSegments:      cfg.MaxSegments,
		CacheSize:        cfg.CacheSize,
		Confidence:       cfg.Analysis.Confidence,
		AssociateWorkers: cfg.AssociateWorkers,
		DrainTimeout:     cfg.DrainTimeout,
		Persist:          st,
		MapSegments:      cfg.MapSegments,
	})
}

// Serve runs the query daemon until ctx is cancelled, then drains
// in-flight requests and stops the ingest pipeline cleanly.
func Serve(ctx context.Context, cfg ServeConfig) error {
	s, err := NewServeServer(cfg)
	if err != nil {
		return err
	}
	return s.Run(ctx)
}
