package core

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/server"
	"bivoc/internal/synth"
)

// serveTestConfig is a small full-stack world: ASR on, so ingest is
// slow enough that queries genuinely land mid-ingest, and the daemon
// exercises transcribe → link → annotate end to end.
func serveTestConfig() ServeConfig {
	cfg := DefaultServeConfig()
	cfg.Analysis.UseASR = true
	cfg.Analysis.World.CallsPerDay = 12
	cfg.Analysis.World.Days = 3
	cfg.Analysis.Workers = 2
	cfg.Addr = "127.0.0.1:0"
	cfg.SwapEvery = 6
	cfg.SwapInterval = 0 // count cadence only: generation count is deterministic
	return cfg
}

func fetch(t *testing.T, rawurl string, out any) []byte {
	t.Helper()
	resp, err := http.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", rawurl, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: unmarshal: %v\n%s", rawurl, err, body)
		}
	}
	return body
}

func marshalResp(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestServeEndToEnd is the serving-layer acceptance test: bring the
// daemon up on a synthetic car-rental world, query it while it is still
// ingesting, then — after the final seal — pin every /v1 endpoint
// byte-identical to the equivalent direct mining.Index calls of a batch
// RunCallAnalysis over the identical configuration.
func TestServeEndToEnd(t *testing.T) {
	cfg := serveTestConfig()
	s, err := NewServeServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + s.Addr()
	outcomes := []string{synth.OutcomeReservation, synth.OutcomeUnbooked, synth.OutcomeService}
	countURL := base + "/v1/count?" + url.Values{"dim": {
		"outcome=" + outcomes[0], "outcome=" + outcomes[1], "outcome=" + outcomes[2],
	}}.Encode()

	// Mid-ingest: every answer must be self-consistent with exactly one
	// snapshot — each call has exactly one outcome, so the three counts
	// must sum to that snapshot's total even while totals keep moving.
	midIngest := 0
	for {
		var h server.HealthResponse
		fetch(t, base+"/healthz", &h)
		var c server.CountResponse
		fetch(t, countURL, &c)
		if c.Counts[0]+c.Counts[1]+c.Counts[2] != c.Total {
			t.Fatalf("torn mid-ingest read: %+v", c)
		}
		if !c.Sealed {
			midIngest++
		}
		if h.Sealed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("%d self-consistent mid-ingest responses before the seal", midIngest)

	select {
	case <-s.IngestDone():
	case <-time.After(60 * time.Second):
		t.Fatal("ingest did not finish")
	}
	if err := s.IngestErr(); err != nil {
		t.Fatal(err)
	}
	totalCalls := cfg.Analysis.World.CallsPerDay * cfg.Analysis.World.Days
	gen, docs, sealed := s.SnapshotInfo()
	if !sealed || docs != totalCalls {
		t.Fatalf("final snapshot: gen=%d docs=%d sealed=%v, want %d sealed", gen, docs, sealed, totalCalls)
	}
	// SwapEvery=6 with no ticker: one generation per 6 docs + the final
	// sealed publish.
	if want := uint64(totalCalls/cfg.SwapEvery + 1); gen != want {
		t.Errorf("generation = %d, want %d (deterministic SwapEvery cadence)", gen, want)
	}

	// Ground truth: the batch pipeline over the identical configuration.
	ca, err := RunCallAnalysis(cfg.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	ix := ca.Index
	if ix.Len() != docs {
		t.Fatalf("batch index has %d docs, daemon served %d", ix.Len(), docs)
	}

	intentStrong := mining.ConceptDim(CatIntent, IntentStrongConcept)
	intentWeak := mining.ConceptDim(CatIntent, IntentWeakConcept)
	resDim := mining.FieldDim("outcome", synth.OutcomeReservation)
	unbDim := mining.FieldDim("outcome", synth.OutcomeUnbooked)

	t.Run("count", func(t *testing.T) {
		var got server.CountResponse
		body := fetch(t, countURL, &got)
		want := server.CountResponse{
			Generation: gen, Sealed: true, Total: ix.Len(),
			Dims: []string{"outcome=" + outcomes[0], "outcome=" + outcomes[1], "outcome=" + outcomes[2]},
			Counts: []int{
				ix.Count(mining.FieldDim("outcome", outcomes[0])),
				ix.Count(mining.FieldDim("outcome", outcomes[1])),
				ix.Count(mining.FieldDim("outcome", outcomes[2])),
			},
		}
		if !bytes.Equal(body, marshalResp(t, want)) {
			t.Errorf("daemon count != direct index count:\n got %s\nwant %s", body, marshalResp(t, want))
		}
	})

	t.Run("associate matches IntentOutcomeTable", func(t *testing.T) {
		v := url.Values{
			"row": {intentStrong.Label(), intentWeak.Label()},
			"col": {resDim.Label(), unbDim.Label()},
		}
		var got server.AssociateResponse
		body := fetch(t, base+"/v1/associate?"+v.Encode(), &got)
		tbl := ca.IntentOutcomeTable()
		want := server.AssociateResponse{
			Generation: gen, Sealed: true, Confidence: tbl.Confidence,
			Rows: []string{intentStrong.CanonicalLabel(), intentWeak.CanonicalLabel()},
			Cols: []string{resDim.CanonicalLabel(), unbDim.CanonicalLabel()},
		}
		want.Cells = make([][]server.AssocCellJSON, len(tbl.Cells))
		for i, row := range tbl.Cells {
			want.Cells[i] = make([]server.AssocCellJSON, len(row))
			for j, c := range row {
				want.Cells[i][j] = server.AssocCellJSON{
					Ncell: c.Ncell, Nver: c.Nver, Nhor: c.Nhor, N: c.N,
					PointIndex: c.PointIndex, LowerIndex: c.LowerIndex, RowShare: c.RowShare,
				}
			}
		}
		if !bytes.Equal(body, marshalResp(t, want)) {
			t.Errorf("daemon associate != IntentOutcomeTable:\n got %s\nwant %s", body, marshalResp(t, want))
		}
	})

	t.Run("relfreq matches WeakStartConversionDrivers", func(t *testing.T) {
		featured := mining.AndDim(intentWeak, resDim)
		v := url.Values{"category": {CatDiscount}, "featured": {featured.Label()}}
		var got server.RelFreqResponse
		body := fetch(t, base+"/v1/relfreq?"+v.Encode(), &got)
		rel := ca.WeakStartConversionDrivers()
		want := server.RelFreqResponse{
			Generation: gen, Sealed: true,
			Category: CatDiscount, Featured: featured.CanonicalLabel(),
			Rows: make([]server.RelevanceJSON, len(rel)),
		}
		for i, r := range rel {
			want.Rows[i] = server.RelevanceJSON{
				Concept: r.Concept, InSubset: r.InSubset, SubsetSize: r.SubsetSize,
				InAll: r.InAll, N: r.N, Ratio: r.Ratio,
			}
		}
		if !bytes.Equal(body, marshalResp(t, want)) {
			t.Errorf("daemon relfreq != WeakStartConversionDrivers:\n got %s\nwant %s", body, marshalResp(t, want))
		}
	})

	t.Run("drilldown", func(t *testing.T) {
		v := url.Values{"row": {intentWeak.Label()}, "col": {resDim.Label()}, "limit": {"3"}}
		var got server.DrillDownResponse
		body := fetch(t, base+"/v1/drilldown?"+v.Encode(), &got)
		cell := ix.DrillDown(intentWeak, resDim)
		want := server.DrillDownResponse{
			Generation: gen, Sealed: true,
			Row: intentWeak.CanonicalLabel(), Col: resDim.CanonicalLabel(),
			Count: len(cell), Truncated: len(cell) > 3,
		}
		if len(cell) > 3 {
			cell = cell[:3]
		}
		for _, d := range cell {
			concepts := make([]server.ConceptJSON, len(d.Concepts))
			for j, c := range d.Concepts {
				concepts[j] = server.ConceptJSON{Category: c.Category, Canonical: c.Canonical}
			}
			want.Docs = append(want.Docs, server.DocumentJSON{
				ID: d.ID, Fields: d.Fields, Time: d.Time, Concepts: concepts,
			})
		}
		if !bytes.Equal(body, marshalResp(t, want)) {
			t.Errorf("daemon drilldown != direct DrillDown:\n got %s\nwant %s", body, marshalResp(t, want))
		}
	})

	t.Run("trend", func(t *testing.T) {
		v := url.Values{"dim": {resDim.Label()}}
		var got server.TrendResponse
		body := fetch(t, base+"/v1/trend?"+v.Encode(), &got)
		pts := ix.Trend(resDim)
		want := server.TrendResponse{
			Generation: gen, Sealed: true, Dim: resDim.CanonicalLabel(),
			Points: make([]server.TrendPointJSON, len(pts)),
			Slope:  mining.TrendSlope(pts),
		}
		for i, p := range pts {
			want.Points[i] = server.TrendPointJSON{Time: p.Time, Count: p.Count}
		}
		if !bytes.Equal(body, marshalResp(t, want)) {
			t.Errorf("daemon trend != direct Trend:\n got %s\nwant %s", body, marshalResp(t, want))
		}
		if len(got.Points) != cfg.Analysis.World.Days {
			t.Errorf("trend has %d buckets, want one per day (%d)", len(got.Points), cfg.Analysis.World.Days)
		}
	})

	t.Run("concepts", func(t *testing.T) {
		var got server.ConceptsResponse
		body := fetch(t, base+"/v1/concepts?category="+url.QueryEscape(CatVehicle), &got)
		want := server.ConceptsResponse{
			Generation: gen, Sealed: true, Category: CatVehicle,
			Values: ix.ConceptsInCategory(CatVehicle),
		}
		if !bytes.Equal(body, marshalResp(t, want)) {
			t.Errorf("daemon concepts != direct ConceptsInCategory:\n got %s\nwant %s", body, marshalResp(t, want))
		}
		if len(got.Values) == 0 {
			t.Error("no vehicle concepts surfaced — annotation path broken in serving mode")
		}
		var gotF server.ConceptsResponse
		fetch(t, base+"/v1/concepts?field=outcome", &gotF)
		if len(gotF.Values) != 3 {
			t.Errorf("outcome field values = %v, want the three outcomes", gotF.Values)
		}
	})

	t.Run("cached responses identical", func(t *testing.T) {
		first := fetch(t, countURL, nil)
		hits0, _ := s.CacheStats()
		second := fetch(t, countURL, nil)
		hits1, _ := s.CacheStats()
		if !bytes.Equal(first, second) {
			t.Errorf("cached response differs:\n%s\n%s", first, second)
		}
		if hits1 != hits0+1 {
			t.Errorf("repeat query did not hit the cache: hits %d → %d", hits0, hits1)
		}
	})

	t.Run("statsz exposes pipeline stages", func(t *testing.T) {
		var got server.StatszResponse
		fetch(t, base+"/statsz", &got)
		if len(got.Pipeline) != 3 {
			t.Fatalf("statsz pipeline = %+v, want the three stages", got.Pipeline)
		}
		names := []string{got.Pipeline[0].Name, got.Pipeline[1].Name, got.Pipeline[2].Name}
		if names[0] != "transcribe" || names[1] != "link" || names[2] != "annotate" {
			t.Errorf("stage names %v", names)
		}
		for _, st := range got.Pipeline {
			if st.Out != uint64(totalCalls) {
				t.Errorf("stage %s passed %d items, want %d", st.Name, st.Out, totalCalls)
			}
		}
	})
}

// TestServeStopsOnCancel covers the blocking facade: Serve runs until
// the context is cancelled and shuts down cleanly.
func TestServeStopsOnCancel(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Analysis.World.CallsPerDay = 5
	cfg.Analysis.World.Days = 2
	cfg.Addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, cfg) }()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
