// Package core wires the BIVoC subsystems into the full pipeline of
// Figure 3 — data processing (ASR / cleaning) → data linking →
// annotation → indexing & reporting — and drives the paper's two use
// cases: agent-productivity improvement in a car-rental contact centre
// (§V, Tables III/IV, the training A/B of §V.C) and churn prediction for
// a wireless telecom (§VI). The ASR evaluation of Table I and the
// constrained second pass of §IV.A.1 are also orchestrated here so the
// benchmark harness and the CLI share one implementation.
package core

import (
	"strings"

	"bivoc/internal/annotate"
	"bivoc/internal/synth"
	"bivoc/internal/textproc"
)

// Semantic categories used by the car-rental analysis.
const (
	CatIntent   = "customer intention"
	CatValue    = "value selling"
	CatDiscount = "discount"
	CatVehicle  = "vehicle type"
	CatPlace    = "place"
)

// Intent concept canonical forms.
const (
	IntentStrongConcept = "strong start"
	IntentWeakConcept   = "weak start"
)

// BuildCarRentalAnnotator assembles the §V annotation engine: the domain
// dictionary (vehicle indicators with canonical forms, cities, discount
// vocabulary) plus the value-selling patterns of §V.A.
func BuildCarRentalAnnotator() *annotate.Engine {
	dict := annotate.NewDictionary()
	for surface, canonical := range synth.VehicleIndicators() {
		dict.Add(annotate.Entry{Surface: surface, PoS: annotate.PoSNoun, Canonical: canonical, Category: CatVehicle})
	}
	for _, city := range synth.Cities() {
		dict.Add(annotate.Entry{Surface: city, PoS: annotate.PoSProperNoun, Canonical: city, Category: CatPlace})
	}
	// Discount-relating phrases are "registered into the domain
	// dictionary as discount-related phrases" (§V.A).
	for _, surface := range []string{
		"discount", "corporate program", "motor club", "buying club",
	} {
		dict.Add(annotate.Entry{Surface: surface, PoS: annotate.PoSNoun, Canonical: "discount", Category: CatDiscount})
	}
	en := annotate.NewEngine(dict)
	// Value-selling phrases are pattern-extracted (§V.A: "we extract
	// phrases mentioning good rate and good vehicle by matching
	// patterns"). Single-anchor patterns survive ASR noise better than
	// long surfaces.
	for _, adj := range []string{"good", "great", "wonderful", "fantastic", "low"} {
		for _, noun := range []string{"rate", "price", "car", "amount", "model"} {
			en.AddPattern(annotate.Pattern{
				Name:     "value-" + adj + "-" + noun,
				Elems:    []annotate.Elem{annotate.Lit(adj), annotate.Lit(noun)},
				Label:    "mention of good " + noun,
				Category: CatValue,
			})
		}
	}
	en.AddPattern(annotate.Pattern{
		Name:     "value-save-money",
		Elems:    []annotate.Elem{annotate.Lit("save"), annotate.Lit("money")},
		Label:    "mention of good rate",
		Category: CatValue,
	})
	en.AddPattern(annotate.Pattern{
		Name:     "value-latest-model",
		Elems:    []annotate.Elem{annotate.Lit("latest"), annotate.Lit("model")},
		Label:    "mention of good vehicle",
		Category: CatValue,
	})
	return en
}

// strong / weak cue inventories for intent classification. The §V.A
// patterns ("would like to make a booking" vs "can i know the rates")
// reduce, on noisy transcripts, to the presence of commitment verbs
// versus rate-enquiry words in the opening utterances.
var strongCues = map[string]bool{
	"booking": true, "book": true, "reservation": true, "reserve": true,
	"pick": true, "need": true,
}

var weakCues = map[string]bool{
	"rates": true, "rate": true, "much": true, "cost": true, "know": true,
	"what": true,
}

// openingWindow is how many words of the transcript count as the
// "customer's first or second utterance" (§V.A) for intent extraction.
// Transcripts open with the agent greeting (~12 words), so the window
// spans the greeting plus the customer's opening.
const openingWindow = 26

// ClassifyIntent extracts the customer intention at start of call from a
// transcript, per §V.A: Strong start (wants to book) vs Weak start
// (asks about rates). It returns "" when neither pattern fires (e.g.
// service calls).
func ClassifyIntent(transcript []string) string {
	n := len(transcript)
	if n > openingWindow {
		n = openingWindow
	}
	strong, weak := 0, 0
	for _, w := range transcript[:n] {
		if strongCues[w] {
			strong++
		}
		if weakCues[w] {
			weak++
		}
	}
	switch {
	case strong == 0 && weak == 0:
		return ""
	case weak > strong:
		return IntentWeakConcept
	case strong > weak:
		return IntentStrongConcept
	default:
		// Tie: rate-enquiry words alongside booking words read as a rate
		// enquiry ("can i know the rates for booking a car").
		return IntentWeakConcept
	}
}

// AnnotateTranscript runs the annotation engine over a transcript and
// prepends the intent concept when one is detected.
func AnnotateTranscript(en *annotate.Engine, transcript []string) []annotate.Concept {
	text := strings.Join(transcript, " ")
	concepts := en.Annotate(text)
	if intent := ClassifyIntent(transcript); intent != "" {
		concepts = append([]annotate.Concept{{
			Canonical: intent, Category: CatIntent, Start: 0, End: 1,
		}}, concepts...)
	}
	return concepts
}

// TranscriptText joins a transcript into analysable text.
func TranscriptText(transcript []string) string {
	return textproc.NormalizeWhitespace(strings.Join(transcript, " "))
}
