package core

import (
	"fmt"
	"strings"

	"bivoc/internal/classify"
	"bivoc/internal/synth"
	"bivoc/internal/textproc"
)

// Call-type classification (§II background, refs [21] and [10] of the
// paper: "call type classification for the purpose of categorizing
// calls" and "automatic call routing"). BIVoC uses the call type as a
// structured dimension; in engagements where the CRM does not record
// it, this classifier derives it from the transcript.

// Call-type labels.
const (
	CallTypeSales   = "sales"
	CallTypeService = "service"
)

// CallTypeClassifier labels calls as reservation-seeking or service.
type CallTypeClassifier struct {
	nb *classify.NaiveBayes
}

// NewCallTypeClassifier returns an untrained classifier.
func NewCallTypeClassifier() *CallTypeClassifier {
	return &CallTypeClassifier{nb: classify.NewNaiveBayes()}
}

func callTypeFeatures(transcript []string) []string {
	// Use the opening region only: routing must decide early, and the
	// tail of a sales call (identity, closing) looks like any other call.
	n := len(transcript)
	if n > 30 {
		n = 30
	}
	text := strings.Join(transcript[:n], " ")
	return textproc.ContentWords(text)
}

// Train adds one labeled call.
func (c *CallTypeClassifier) Train(transcript []string, callType string) {
	c.nb.Train(callType, callTypeFeatures(transcript))
}

// TrainFromCalls trains on a generated corpus using the hidden truth.
func (c *CallTypeClassifier) TrainFromCalls(calls []synth.Call) {
	for _, call := range calls {
		label := CallTypeSales
		if call.Intent == synth.IntentService {
			label = CallTypeService
		}
		c.Train(call.Transcript, label)
	}
}

// Classify returns the predicted call type.
func (c *CallTypeClassifier) Classify(transcript []string) string {
	return c.nb.Predict(callTypeFeatures(transcript))
}

// Evaluate measures accuracy over labeled calls.
func (c *CallTypeClassifier) Evaluate(calls []synth.Call) (accuracy float64, err error) {
	if len(calls) == 0 {
		return 0, fmt.Errorf("core: no calls to evaluate")
	}
	correct := 0
	for _, call := range calls {
		want := CallTypeSales
		if call.Intent == synth.IntentService {
			want = CallTypeService
		}
		if c.Classify(call.Transcript) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(calls)), nil
}
