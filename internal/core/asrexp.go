package core

import (
	"strings"

	"bivoc/internal/asr"
	"bivoc/internal/linker"
	"bivoc/internal/rng"
	"bivoc/internal/synth"
	"bivoc/internal/warehouse"
)

// ASRExperimentConfig drives the Table I measurement: per-entity-class
// word error rates of the recognizer at a channel operating point.
type ASRExperimentConfig struct {
	World    synth.CarRentalConfig
	NumCalls int
	Channel  asr.ChannelConfig
	Decoder  asr.DecoderConfig
	// LMOrder is the language-model N-gram order (default 2, the paper's
	// configuration; 1 and 3 support the LM-order ablation).
	LMOrder int
}

// DefaultASRExperimentConfig returns the Table I configuration.
func DefaultASRExperimentConfig() ASRExperimentConfig {
	world := synth.DefaultCarRentalConfig()
	world.CallsPerDay = 1
	world.Days = 0
	return ASRExperimentConfig{
		World:    world,
		NumCalls: 120,
		Channel:  asr.CallCenterChannel,
		Decoder:  asr.DefaultDecoderConfig(),
	}
}

// ASRResult holds Table I: WER for entire speech, names, and numbers.
type ASRResult struct {
	Overall float64
	Names   float64
	Numbers float64
	// Utterances and RefWords describe the evaluation corpus.
	Utterances int
	RefWords   int
}

// RunASRExperiment transcribes NumCalls generated conversations through
// the noisy channel and scores WER per entity class. As in the paper's
// evaluation, the corpus mixes the car-booking and banking domains.
func RunASRExperiment(cfg ASRExperimentConfig) (*ASRResult, error) {
	world, err := synth.NewCarRentalWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	order := cfg.LMOrder
	if order <= 0 {
		order = 2
	}
	rec, err := synth.BuildRecognizerOrder(cfg.Channel, cfg.Decoder, order)
	if err != nil {
		return nil, err
	}
	carCalls := cfg.NumCalls - cfg.NumCalls/3
	world.Config.CallsPerDay = carCalls
	calls := world.GenerateCalls(0, 1)
	var refs [][]string
	var ids []string
	for _, c := range calls {
		refs = append(refs, c.Transcript)
		ids = append(ids, c.ID)
	}
	for _, c := range world.GenerateBankingCalls(cfg.NumCalls / 3) {
		refs = append(refs, c.Transcript)
		ids = append(ids, c.ID)
	}
	scorer := asr.NewClassWER(rec.Lex)
	noiseRnd := rng.New(cfg.World.Seed).SplitString("table1")
	refWords := 0
	for i, ref := range refs {
		hyp, err := rec.Transcribe(noiseRnd.SplitString(ids[i]), ref)
		if err != nil {
			return nil, err
		}
		scorer.Add(ref, hyp)
		refWords += len(ref)
	}
	return &ASRResult{
		Overall:    scorer.Overall(),
		Names:      scorer.ForClass(asr.ClassName),
		Numbers:    scorer.ForClass(asr.ClassDigit),
		Utterances: len(refs),
		RefWords:   refWords,
	}, nil
}

// SecondPassConfig drives the §IV.A.1 improvement experiment: link the
// first-pass transcript to the customer database, take the top-N
// candidate identities, and re-decode with the name vocabulary
// restricted to those candidates.
type SecondPassConfig struct {
	World    synth.CarRentalConfig
	NumCalls int
	Channel  asr.ChannelConfig
	Decoder  asr.DecoderConfig
	TopN     int
	// NameBonus is the log-space prior sharpening for allowed names.
	NameBonus float64
	// MinIdentityScore gates the second pass: the constrained re-decode
	// runs only when the best database match scores at least this much
	// (≈1.0 means both name parts, or a name plus phone evidence,
	// matched). Below the gate, linking is too uncertain to narrow the
	// name vocabulary safely.
	MinIdentityScore float64
}

// DefaultSecondPassConfig returns the paper-shaped configuration.
func DefaultSecondPassConfig() SecondPassConfig {
	world := synth.DefaultCarRentalConfig()
	world.CallsPerDay = 1
	world.Days = 0
	return SecondPassConfig{
		World:            world,
		NumCalls:         120,
		Channel:          asr.CallCenterChannel,
		Decoder:          asr.DefaultDecoderConfig(),
		TopN:             8,
		NameBonus:        2.0,
		MinIdentityScore: 0.45,
	}
}

// SecondPassResult reports name-recognition accuracy before and after
// the constrained second pass. The paper: "using this method we could
// improve the accuracy of the name recognition by 10% absolute".
type SecondPassResult struct {
	FirstPassNameAcc  float64
	SecondPassNameAcc float64
	Improvement       float64 // absolute
	// LinkedCalls counts calls whose first pass yielded DB candidates.
	LinkedCalls int
	Calls       int
}

// NewCustomerLinker builds the linking engine over a car-rental world's
// customer table. Name and phone identify; the rental city corroborates
// (many customers share a city, so it carries a reduced weight — the
// §IV.B weights are exactly this dial, normally EM-learned).
func NewCustomerLinker(db *warehouse.DB) (*linker.Engine, error) {
	e, err := linker.NewEngine(db, linker.Config{Targets: map[linker.TokenType][]linker.Attribute{
		linker.TokName: {
			{Table: "customers", Column: "name"},
		},
		linker.TokDigits: {
			{Table: "customers", Column: "phone"},
			{Table: "customers", Column: "dob"},
		},
		linker.TokPlace: {
			{Table: "customers", Column: "city"},
		},
	}})
	if err != nil {
		return nil, err
	}
	e.SetWeight(linker.Attribute{Table: "customers", Column: "name"}, 0.5)
	e.SetWeight(linker.Attribute{Table: "customers", Column: "phone"}, 0.5)
	e.SetWeight(linker.Attribute{Table: "customers", Column: "dob"}, 0.4)
	e.SetWeight(linker.Attribute{Table: "customers", Column: "city"}, 0.2)
	return e, nil
}

// NewCarRentalAnnotators builds the token annotators for the car-rental
// domain: the full name inventory and city lexicon.
func NewCarRentalAnnotators() *linker.Annotators {
	names := append(synth.GivenNames(), synth.Surnames()...)
	return linker.NewAnnotators(names, synth.Cities())
}

// RunSecondPassExperiment measures first- versus second-pass name
// accuracy over NumCalls conversations.
func RunSecondPassExperiment(cfg SecondPassConfig) (*SecondPassResult, error) {
	world, err := synth.NewCarRentalWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	rec, err := synth.BuildRecognizer(cfg.Channel, cfg.Decoder)
	if err != nil {
		return nil, err
	}
	engine, err := NewCustomerLinker(world.DB)
	if err != nil {
		return nil, err
	}
	annotators := NewCarRentalAnnotators()
	world.Config.CallsPerDay = cfg.NumCalls
	calls := world.GenerateCalls(0, 1)
	noiseRnd := rng.New(cfg.World.Seed).SplitString("secondpass")

	res := &SecondPassResult{Calls: len(calls)}
	var refs, firstHyps, secondHyps [][]string
	for _, call := range calls {
		phones, err := rec.Lex.Phones(call.Transcript)
		if err != nil {
			return nil, err
		}
		obs := rec.Channel.Corrupt(noiseRnd.SplitString(call.ID), phones)
		first := rec.TranscribePhones(obs)

		// Link the partially recognized identity entities jointly
		// (§IV.A.1) to fetch the top-N candidate identities from the
		// warehouse. Only anchored identity mentions participate, and the
		// constrained pass runs only when the best match is confident.
		tokens := annotators.ExtractIdentity(strings.Join(first, " "))
		matches := engine.LinkTable(tokens, "customers", cfg.TopN)
		second := first
		if len(matches) > 0 && matches[0].Score >= cfg.MinIdentityScore {
			res.LinkedCalls++
			topNames := engine.TopNames(tokens, "customers", "name", cfg.TopN)
			allowed := make(map[string]bool, len(topNames))
			for _, n := range topNames {
				allowed[n] = true
			}
			// Slot-level constrained re-decoding: each name span competes
			// only among the database candidates (plus the incumbent).
			second = rec.RescoreNames(first, obs, allowed)
		}
		refs = append(refs, call.Transcript)
		firstHyps = append(firstHyps, first)
		secondHyps = append(secondHyps, second)
	}
	res.FirstPassNameAcc = asr.WordAccuracy(rec.Lex, refs, firstHyps, asr.ClassName)
	res.SecondPassNameAcc = asr.WordAccuracy(rec.Lex, refs, secondHyps, asr.ClassName)
	res.Improvement = res.SecondPassNameAcc - res.FirstPassNameAcc
	return res, nil
}
