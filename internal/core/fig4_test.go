package core

import (
	"testing"

	"bivoc/internal/mining"
	"bivoc/internal/synth"
)

func TestRunEmailCategoryAnalysis(t *testing.T) {
	cfg := DefaultEmailAssociationConfig()
	cfg.World.NumCustomers = 400
	cfg.World.Emails = 1500
	ea, err := RunEmailCategoryAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ea.Index.Len() == 0 {
		t.Fatal("no emails indexed")
	}
	if len(ea.Table.Rows) != len(synth.Competitors()) {
		t.Errorf("rows = %d", len(ea.Table.Rows))
	}
	if len(ea.Table.Cols) != len(synth.EmailCategories()) {
		t.Errorf("cols = %d", len(ea.Table.Cols))
	}
	// Some competitor mentions must survive cleaning and noise.
	totalMentions := 0
	for _, comp := range synth.Competitors() {
		totalMentions += ea.Index.Count(mining.ConceptDim(CatCompetitor, comp))
	}
	if totalMentions == 0 {
		t.Fatal("no competitor mentions detected")
	}
	// The designed association: competitor mentions are enriched in the
	// cancellation category relative to its base rate.
	cancellation := mining.FieldDim("category", synth.CategoryCancellation)
	baseRate := float64(ea.Index.Count(cancellation)) / float64(ea.Index.Len())
	withComp, cancelComp := 0, 0
	for _, comp := range synth.Competitors() {
		d := mining.ConceptDim(CatCompetitor, comp)
		withComp += ea.Index.Count(d)
		cancelComp += ea.Index.CountBoth(d, cancellation)
	}
	compRate := float64(cancelComp) / float64(withComp)
	if compRate <= baseRate {
		t.Errorf("competitor mentions should be enriched in cancellations: %v vs base %v", compRate, baseRate)
	}
}

func TestEmailCategoriesAssigned(t *testing.T) {
	cfg := synth.DefaultTelecomConfig()
	cfg.NumCustomers = 200
	cfg.Emails = 400
	cfg.SMS = 0
	w, err := synth.NewTelecomWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, m := range w.Emails {
		if m.Spam {
			continue
		}
		if m.Category == "" {
			t.Fatalf("message %s has no category", m.ID)
		}
		seen[m.Category]++
	}
	if len(seen) < 3 {
		t.Errorf("category diversity too low: %v", seen)
	}
}

func TestCompetitorMentionsConcentrateInChurners(t *testing.T) {
	cfg := synth.DefaultTelecomConfig()
	cfg.NumCustomers = 500
	cfg.Emails = 2500
	cfg.SMS = 0
	w, err := synth.NewTelecomWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	churnComp, churnN, stayComp, stayN := 0, 0, 0, 0
	for _, m := range w.Emails {
		if m.Spam || m.CustIdx < 0 {
			continue
		}
		if m.FromChurner {
			churnN++
			if m.Competitor != "" {
				churnComp++
			}
		} else {
			stayN++
			if m.Competitor != "" {
				stayComp++
			}
		}
	}
	if churnN == 0 || stayN == 0 {
		t.Fatal("degenerate corpus")
	}
	churnRate := float64(churnComp) / float64(churnN)
	stayRate := float64(stayComp) / float64(stayN)
	if churnRate <= stayRate*2 {
		t.Errorf("competitor mentions should concentrate in churners: churn %v vs stay %v", churnRate, stayRate)
	}
}

func TestStratifiedPickRepresentative(t *testing.T) {
	// Agents with conversion 0.00 .. 0.89; picking 10 of 90 should give a
	// group whose mean is close to the population mean.
	var stats []AgentWindowStats
	for i := 0; i < 90; i++ {
		stats = append(stats, AgentWindowStats{
			AgentID:      "A",
			Reservations: i,
			Unbooked:     89,
		})
	}
	picked := stratifiedPick(stats, 10)
	if len(picked) != 10 {
		t.Fatalf("picked %d", len(picked))
	}
	popMean, pickMean := 0.0, 0.0
	for _, s := range stats {
		popMean += s.ConversionRate()
	}
	popMean /= float64(len(stats))
	seen := map[int]bool{}
	for _, idx := range picked {
		if seen[idx] {
			t.Fatal("duplicate pick")
		}
		seen[idx] = true
		pickMean += stats[idx].ConversionRate()
	}
	pickMean /= float64(len(picked))
	if diff := pickMean - popMean; diff < -0.03 || diff > 0.03 {
		t.Errorf("stratified mean %v far from population %v", pickMean, popMean)
	}
}

func TestStratifiedPickEdgeCases(t *testing.T) {
	if got := stratifiedPick(nil, 5); len(got) != 0 {
		t.Errorf("empty stats picked %v", got)
	}
	stats := []AgentWindowStats{{Reservations: 1, Unbooked: 1}}
	if got := stratifiedPick(stats, 5); len(got) != 1 {
		t.Errorf("n>len picked %v", got)
	}
	if got := stratifiedPick(stats, 0); len(got) != 0 {
		t.Errorf("n=0 picked %v", got)
	}
}
