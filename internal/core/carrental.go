package core

import (
	"context"

	"bivoc/internal/asr"
	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
	"bivoc/internal/synth"
)

// CallAnalysisConfig drives the §V pipeline end to end.
type CallAnalysisConfig struct {
	World synth.CarRentalConfig
	// Channel is the acoustic operating point. UseASR=false skips the
	// recognizer and analyzes reference transcripts (fast mode for
	// analysis-layer work; the paper's pipeline always transcribes).
	Channel asr.ChannelConfig
	Decoder asr.DecoderConfig
	UseASR  bool
	// UseNotes analyzes the agent wrap-up notes instead of transcripts —
	// the Figure 1 "contact center notes" channel, which covers every
	// call (recordings cover ~25%, §V.A) but in heavy shorthand. Takes
	// precedence over UseASR.
	UseNotes bool
	// Workers is the per-stage parallelism of the streaming pipeline
	// (default: GOMAXPROCS; 1 recovers the sequential path). §III's third
	// challenge is volume — "one of the help desk accounts ... generated
	// about 150GB of recordings every day" — and calls process
	// independently because each carries its own noise stream. Results
	// are bit-identical at any worker count; realized speedup depends on
	// cores and GC headroom (decoding is allocation-heavy).
	Workers int
	// Confidence for association interval estimates.
	Confidence float64
	// Monitor, when set, is invoked on its own goroutine as the streaming
	// run starts, with live access to stage stats and the growing mining
	// index. It should return promptly once Monitor.Done() closes.
	Monitor func(*StreamMonitor)
	// FaultTolerance threads retry/backoff, per-attempt timeout and the
	// dead-letter budget into every pipeline stage. The zero value keeps
	// fail-fast semantics. Retried stages replay exactly: every call's
	// randomness comes from its own ID-keyed substream, so a retry
	// cannot shift any other call's draw and reports stay byte-identical
	// to a fault-free run.
	FaultTolerance pipeline.FaultTolerance
	// FaultInject, when set, wraps every stage with injected faults —
	// the chaos-testing hook behind the fault-injection suite. Keyed by
	// (stage, call ID, attempt); wrap injected errors with
	// pipeline.Transient to exercise retry, leave them plain to exercise
	// dead-lettering.
	FaultInject pipeline.FaultFn
}

// DefaultCallAnalysisConfig returns the standard configuration with ASR
// at the call-centre operating point.
func DefaultCallAnalysisConfig() CallAnalysisConfig {
	return CallAnalysisConfig{
		World:      synth.DefaultCarRentalConfig(),
		Channel:    asr.CallCenterChannel,
		Decoder:    asr.DefaultDecoderConfig(),
		UseASR:     true,
		Confidence: 0.95,
	}
}

// CallAnalysis is the assembled §V pipeline state.
type CallAnalysis struct {
	Config     CallAnalysisConfig
	World      *synth.CarRentalWorld
	Recognizer *asr.Recognizer
	Index      *mining.Index
	// Transcripts[i] is the analyzed transcript of World.Calls[i] (ASR
	// output or reference, per config); nil for dead-lettered calls.
	Transcripts [][]string
	// DeadLetters records the calls that exhausted their retries and
	// were dropped from the flow (empty unless
	// FaultTolerance.MaxDeadLetters allowed it). The sealed Index holds
	// exactly len(World.Calls) - len(DeadLetters) documents.
	DeadLetters []pipeline.DeadLetter
}

// RunCallAnalysis generates the world and calls, transcribes them,
// annotates the transcripts and indexes each call with its linked
// structured fields (outcome, agent, trained flag) — Figure 3's flow for
// the car-rental engagement, run on the staged streaming pipeline.
func RunCallAnalysis(cfg CallAnalysisConfig) (*CallAnalysis, error) {
	return RunCallAnalysisContext(context.Background(), cfg)
}

// RunCallAnalysisContext is RunCallAnalysis with cancellation: cancel
// ctx and the pipeline aborts promptly, returning the context error.
func RunCallAnalysisContext(ctx context.Context, cfg CallAnalysisConfig) (*CallAnalysis, error) {
	world, err := synth.NewCarRentalWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	world.GenerateCalls(0, cfg.World.Days)
	ca := &CallAnalysis{Config: cfg, World: world}
	if cfg.UseASR && !cfg.UseNotes {
		rec, err := synth.BuildRecognizer(cfg.Channel, cfg.Decoder)
		if err != nil {
			return nil, err
		}
		ca.Recognizer = rec
	}
	if err := ca.analyzeStreaming(ctx); err != nil {
		return nil, err
	}
	return ca, nil
}

// IntentOutcomeTable reproduces Table III: customer intention at start
// of call versus call result, as within-row percentages.
func (ca *CallAnalysis) IntentOutcomeTable() *mining.AssocTable {
	return ca.Index.Associate(
		[]mining.Dim{
			mining.ConceptDim(CatIntent, IntentStrongConcept),
			mining.ConceptDim(CatIntent, IntentWeakConcept),
		},
		[]mining.Dim{
			mining.FieldDim("outcome", synth.OutcomeReservation),
			mining.FieldDim("outcome", synth.OutcomeUnbooked),
		},
		ca.Config.Confidence,
	)
}

// AgentUtteranceTable reproduces Table IV: agent utterance (value
// selling / discount) versus call result.
func (ca *CallAnalysis) AgentUtteranceTable() *mining.AssocTable {
	return ca.Index.Associate(
		[]mining.Dim{
			mining.CategoryDim(CatValue),
			mining.CategoryDim(CatDiscount),
		},
		[]mining.Dim{
			mining.FieldDim("outcome", synth.OutcomeReservation),
			mining.FieldDim("outcome", synth.OutcomeUnbooked),
		},
		ca.Config.Confidence,
	)
}

// LocationVehicleTable reproduces Table II: two-dimensional association
// between rental location and vehicle type mentions.
func (ca *CallAnalysis) LocationVehicleTable() *mining.AssocTable {
	var rows []mining.Dim
	for _, city := range synth.Cities() {
		rows = append(rows, mining.ConceptDim(CatPlace, city))
	}
	var cols []mining.Dim
	for _, vt := range synth.VehicleTypes() {
		cols = append(cols, mining.ConceptDim(CatVehicle, vt))
	}
	return ca.Index.Associate(rows, cols, ca.Config.Confidence)
}

// WeakStartConversionDrivers runs the §V.B relevancy analysis: among
// weak-start calls that nevertheless converted, which agent concepts are
// over-represented? (The paper's finding: discounts — "by analyzing the
// Weak start calls that were successful, we found that in these calls
// agents were offering more discounts".)
func (ca *CallAnalysis) WeakStartConversionDrivers() []mining.Relevance {
	featured := mining.AndDim(
		mining.ConceptDim(CatIntent, IntentWeakConcept),
		mining.FieldDim("outcome", synth.OutcomeReservation),
	)
	return ca.Index.RelativeFrequency(CatDiscount, featured)
}
