package core

import (
	"fmt"
	"runtime"
	"sync"

	"bivoc/internal/asr"
	"bivoc/internal/clean"
	"bivoc/internal/mining"
	"bivoc/internal/rng"
	"bivoc/internal/synth"
	"bivoc/internal/textproc"
)

// CallAnalysisConfig drives the §V pipeline end to end.
type CallAnalysisConfig struct {
	World synth.CarRentalConfig
	// Channel is the acoustic operating point. UseASR=false skips the
	// recognizer and analyzes reference transcripts (fast mode for
	// analysis-layer work; the paper's pipeline always transcribes).
	Channel asr.ChannelConfig
	Decoder asr.DecoderConfig
	UseASR  bool
	// UseNotes analyzes the agent wrap-up notes instead of transcripts —
	// the Figure 1 "contact center notes" channel, which covers every
	// call (recordings cover ~25%, §V.A) but in heavy shorthand. Takes
	// precedence over UseASR.
	UseNotes bool
	// Workers is the transcription parallelism (default: GOMAXPROCS).
	// §III's third challenge is volume — "one of the help desk accounts
	// ... generated about 150GB of recordings every day" — and calls
	// decode independently because each carries its own noise stream.
	// Results are bit-identical at any worker count; realized speedup
	// depends on cores and GC headroom (decoding is allocation-heavy).
	Workers int
	// Confidence for association interval estimates.
	Confidence float64
}

// DefaultCallAnalysisConfig returns the standard configuration with ASR
// at the call-centre operating point.
func DefaultCallAnalysisConfig() CallAnalysisConfig {
	return CallAnalysisConfig{
		World:      synth.DefaultCarRentalConfig(),
		Channel:    asr.CallCenterChannel,
		Decoder:    asr.DefaultDecoderConfig(),
		UseASR:     true,
		Confidence: 0.95,
	}
}

// CallAnalysis is the assembled §V pipeline state.
type CallAnalysis struct {
	Config     CallAnalysisConfig
	World      *synth.CarRentalWorld
	Recognizer *asr.Recognizer
	Index      *mining.Index
	// Transcripts[i] is the analyzed transcript of World.Calls[i] (ASR
	// output or reference, per config).
	Transcripts [][]string
}

// RunCallAnalysis generates the world and calls, transcribes them,
// annotates the transcripts and indexes each call with its linked
// structured fields (outcome, agent, trained flag) — Figure 3's flow for
// the car-rental engagement.
func RunCallAnalysis(cfg CallAnalysisConfig) (*CallAnalysis, error) {
	world, err := synth.NewCarRentalWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	world.GenerateCalls(0, cfg.World.Days)
	ca := &CallAnalysis{Config: cfg, World: world}
	if cfg.UseASR && !cfg.UseNotes {
		rec, err := synth.BuildRecognizer(cfg.Channel, cfg.Decoder)
		if err != nil {
			return nil, err
		}
		ca.Recognizer = rec
	}
	if err := ca.analyze(); err != nil {
		return nil, err
	}
	return ca, nil
}

func (ca *CallAnalysis) analyze() error {
	en := BuildCarRentalAnnotator()
	ix := mining.NewIndex()
	cleaner := clean.NewCleaner()
	transcripts, err := ca.produceTranscripts(cleaner)
	if err != nil {
		return err
	}
	ca.Transcripts = transcripts
	for i, call := range ca.World.Calls {
		transcript := transcripts[i]
		agent := ca.World.Agents[call.AgentIdx]
		trained := "no"
		if agent.Trained {
			trained = "yes"
		}
		ix.Add(mining.Document{
			ID:       call.ID,
			Concepts: AnnotateTranscript(en, transcript),
			Fields: map[string]string{
				"outcome": call.Outcome,
				"agent":   agent.ID,
				"trained": trained,
			},
			Time: call.Day,
		})
		_ = i
	}
	ca.Index = ix
	return nil
}

// produceTranscripts materializes the analyzed text of every call,
// decoding in parallel when a recognizer is configured. Each call's
// channel noise comes from a stream keyed by its id, so the output is
// bit-identical at any worker count.
func (ca *CallAnalysis) produceTranscripts(cleaner *clean.Cleaner) ([][]string, error) {
	calls := ca.World.Calls
	out := make([][]string, len(calls))
	switch {
	case ca.Config.UseNotes:
		for i, call := range calls {
			// Normalize the shorthand through the lingo dictionaries
			// before analysis, as the cleaning stage does for SMS.
			out[i] = textproc.Words(cleaner.NormalizeSMS(ca.World.AgentNote(call)))
		}
		return out, nil
	case ca.Recognizer == nil:
		for i, call := range calls {
			out[i] = call.Transcript
		}
		return out, nil
	}
	workers := ca.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	decodeRnd := rng.New(ca.Config.World.Seed).SplitString("asr-noise")
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				call := calls[i]
				hyp, err := ca.Recognizer.Transcribe(decodeRnd.SplitString(call.ID), call.Transcript)
				if err != nil {
					select {
					case errs <- fmt.Errorf("core: transcribing %s: %w", call.ID, err):
					default:
					}
					return
				}
				out[i] = hyp
			}
		}()
	}
	for i := range calls {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return out, nil
}

// IntentOutcomeTable reproduces Table III: customer intention at start
// of call versus call result, as within-row percentages.
func (ca *CallAnalysis) IntentOutcomeTable() *mining.AssocTable {
	return ca.Index.Associate(
		[]mining.Dim{
			mining.ConceptDim(CatIntent, IntentStrongConcept),
			mining.ConceptDim(CatIntent, IntentWeakConcept),
		},
		[]mining.Dim{
			mining.FieldDim("outcome", synth.OutcomeReservation),
			mining.FieldDim("outcome", synth.OutcomeUnbooked),
		},
		ca.Config.Confidence,
	)
}

// AgentUtteranceTable reproduces Table IV: agent utterance (value
// selling / discount) versus call result.
func (ca *CallAnalysis) AgentUtteranceTable() *mining.AssocTable {
	return ca.Index.Associate(
		[]mining.Dim{
			mining.CategoryDim(CatValue),
			mining.CategoryDim(CatDiscount),
		},
		[]mining.Dim{
			mining.FieldDim("outcome", synth.OutcomeReservation),
			mining.FieldDim("outcome", synth.OutcomeUnbooked),
		},
		ca.Config.Confidence,
	)
}

// LocationVehicleTable reproduces Table II: two-dimensional association
// between rental location and vehicle type mentions.
func (ca *CallAnalysis) LocationVehicleTable() *mining.AssocTable {
	var rows []mining.Dim
	for _, city := range synth.Cities() {
		rows = append(rows, mining.ConceptDim(CatPlace, city))
	}
	var cols []mining.Dim
	for _, vt := range synth.VehicleTypes() {
		cols = append(cols, mining.ConceptDim(CatVehicle, vt))
	}
	return ca.Index.Associate(rows, cols, ca.Config.Confidence)
}

// WeakStartConversionDrivers runs the §V.B relevancy analysis: among
// weak-start calls that nevertheless converted, which agent concepts are
// over-represented? (The paper's finding: discounts — "by analyzing the
// Weak start calls that were successful, we found that in these calls
// agents were offering more discounts".)
func (ca *CallAnalysis) WeakStartConversionDrivers() []mining.Relevance {
	featured := mining.AndDim(
		mining.ConceptDim(CatIntent, IntentWeakConcept),
		mining.FieldDim("outcome", synth.OutcomeReservation),
	)
	return ca.Index.RelativeFrequency(CatDiscount, featured)
}
