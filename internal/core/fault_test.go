package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bivoc/internal/asr"
	"bivoc/internal/pipeline"
)

// hashKey gives a stable, format-agnostic fingerprint of an item key so
// fault predicates hit a deterministic subset of calls/messages.
func hashKey(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// transientFirstAttempts injects a retryable fault into the first two
// attempts of roughly 1-in-mod items on the named stage.
func transientFirstAttempts(stage string, mod uint64) pipeline.FaultFn {
	return func(st, key string, attempt int) error {
		if st == stage && attempt <= 2 && hashKey(key)%mod == 0 {
			return pipeline.Transient(fmt.Errorf("injected flake on %s attempt %d", key, attempt))
		}
		return nil
	}
}

// permanentOn injects an unretryable fault into every attempt of
// roughly 1-in-mod items on the named stage.
func permanentOn(stage string, mod uint64) pipeline.FaultFn {
	return func(st, key string, attempt int) error {
		if st == stage && hashKey(key)%mod == 0 {
			return fmt.Errorf("injected permanent fault on %s", key)
		}
		return nil
	}
}

// testRetry is a fast retry policy for fault-injection tests.
func testRetry() pipeline.RetryPolicy {
	return pipeline.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond, Jitter: 0.5}
}

// TestCallAnalysisTransientFaultsByteIdentical is the fault-injection
// acceptance criterion: transient faults retried to success must leave
// the full report surface byte-identical to a fault-free run, at any
// worker count — retries replay per-call RNG substreams, so a flake on
// one call cannot shift any other call's outcome.
func TestCallAnalysisTransientFaultsByteIdentical(t *testing.T) {
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.UseASR = false

	baseline, err := RunCallAnalysis(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(baseline)

	for _, w := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = w
		cfg.FaultTolerance = pipeline.FaultTolerance{Retry: testRetry()}
		cfg.FaultInject = transientFirstAttempts("annotate", 5)
		ca, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := renderAll(ca); got != want {
			t.Fatalf("workers=%d: reports differ from the no-fault run:\n-- fault --\n%s\n-- none --\n%s", w, got, want)
		}
		if len(ca.DeadLetters) != 0 {
			t.Fatalf("workers=%d: %d dead letters from transient-only faults", w, len(ca.DeadLetters))
		}
		if ca.Index.Len() != len(ca.World.Calls) {
			t.Fatalf("workers=%d: indexed %d of %d calls", w, ca.Index.Len(), len(ca.World.Calls))
		}
		for i := range baseline.Transcripts {
			if strings.Join(baseline.Transcripts[i], " ") != strings.Join(ca.Transcripts[i], " ") {
				t.Fatalf("workers=%d: transcript %d differs under retry", w, i)
			}
		}
	}
}

// TestCallAnalysisTransientFaultsByteIdenticalASR repeats the check
// with the recognizer in the loop — the stage whose per-call noise
// substreams make retry replay non-trivial.
func TestCallAnalysisTransientFaultsByteIdenticalASR(t *testing.T) {
	if testing.Short() {
		t.Skip("ASR decoding is slow")
	}
	base := DefaultCallAnalysisConfig()
	base.World = fastWorld()
	base.World.CallsPerDay = 25
	base.World.Days = 1
	base.Channel = asr.TelephoneChannel
	base.Decoder.BeamWidth = 96

	baseline, err := RunCallAnalysis(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(baseline)

	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		cfg.FaultTolerance = pipeline.FaultTolerance{Retry: testRetry()}
		cfg.FaultInject = transientFirstAttempts("transcribe", 4)
		ca, err := RunCallAnalysis(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := renderAll(ca); got != want {
			t.Fatalf("workers=%d: ASR reports differ from the no-fault run", w)
		}
		for i := range baseline.Transcripts {
			if strings.Join(baseline.Transcripts[i], " ") != strings.Join(ca.Transcripts[i], " ") {
				t.Fatalf("workers=%d: retried decode of call %d is not a replay", w, i)
			}
		}
	}
}

// TestCallAnalysisPermanentFaultsDeadLetter: permanent faults drop the
// affected calls into the dead-letter queue; the run completes and the
// sealed index accounts for exactly the survivors.
func TestCallAnalysisPermanentFaultsDeadLetter(t *testing.T) {
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.UseASR = false
	cfg.Workers = 4
	cfg.FaultTolerance = pipeline.FaultTolerance{Retry: testRetry(), MaxDeadLetters: 200}
	cfg.FaultInject = permanentOn("annotate", 7)

	ca, err := RunCallAnalysis(cfg)
	if err != nil {
		t.Fatalf("run with dead-letter budget failed: %v", err)
	}
	if len(ca.DeadLetters) == 0 {
		t.Fatal("no dead letters despite injected permanent faults")
	}
	if got, want := ca.Index.Len(), len(ca.World.Calls)-len(ca.DeadLetters); got != want {
		t.Fatalf("index holds %d docs, want %d (calls minus dead letters)", got, want)
	}
	deadIDs := map[string]bool{}
	for _, dl := range ca.DeadLetters {
		if dl.Stage != "annotate" || dl.Attempts != 1 {
			t.Fatalf("dead letter %+v: want stage annotate, 1 attempt (permanent errors burn no retries)", dl)
		}
		deadIDs[dl.Key] = true
	}
	for i, call := range ca.World.Calls {
		if deadIDs[call.ID] != (ca.Transcripts[i] == nil) {
			t.Fatalf("call %s: dead=%v but transcript nil=%v", call.ID, deadIDs[call.ID], ca.Transcripts[i] == nil)
		}
	}
}

// TestCallAnalysisDeadLetterBudgetExceeded: past the budget the run
// fails fast, carrying the first dead-letter error.
func TestCallAnalysisDeadLetterBudgetExceeded(t *testing.T) {
	cfg := DefaultCallAnalysisConfig()
	cfg.World = fastWorld()
	cfg.UseASR = false
	cfg.Workers = 4
	cfg.FaultTolerance = pipeline.FaultTolerance{MaxDeadLetters: 3}
	cfg.FaultInject = permanentOn("annotate", 7)

	_, err := RunCallAnalysis(cfg)
	if err == nil {
		t.Fatal("run past the dead-letter budget reported success")
	}
	if !strings.Contains(err.Error(), "dead-letter budget 3 exceeded") {
		t.Fatalf("error %q does not name the budget", err)
	}
	if !strings.Contains(err.Error(), "injected permanent fault") {
		t.Fatalf("error %q does not carry the first dead-letter cause", err)
	}
}

// TestChurnExperimentDeadLettersAccounted: the §VI experiment must
// degrade gracefully — messages that exhaust retries are counted in
// the result stats, every other number still adds up, and the
// experiment completes.
func TestChurnExperimentDeadLettersAccounted(t *testing.T) {
	base := DefaultChurnExperimentConfig()
	base.World.NumCustomers = 300
	base.World.Emails = 700
	base.World.SMS = 0

	baseline, err := RunChurnExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.DeadLettered != 0 {
		t.Fatalf("fault-free run reported %d dead letters", baseline.DeadLettered)
	}

	cfg := base
	cfg.Workers = 4
	cfg.FaultTolerance = pipeline.FaultTolerance{Retry: testRetry(), MaxDeadLetters: 700}
	cfg.FaultInject = permanentOn("clean", 9)
	res, err := RunChurnExperiment(cfg)
	if err != nil {
		t.Fatalf("churn run with dead-letter budget crashed: %v", err)
	}
	if res.DeadLettered == 0 {
		t.Fatal("no messages dead-lettered despite injected permanent faults")
	}
	if got := res.Spam + res.NonEnglish + res.Empty + res.Linked + res.Unlinkable + res.DeadLettered; got != res.Messages {
		t.Fatalf("accounting identity broken: %d classified of %d messages", got, res.Messages)
	}
	// Graceful degradation: the survivors still train and evaluate a
	// classifier — the experiment reports over less data, not nothing.
	if res.Linked == 0 || len(res.TopFeatures) == 0 {
		t.Fatalf("degraded run produced no usable experiment: %+v", res)
	}
	if res.TP+res.FP+res.TN+res.FN == 0 {
		t.Fatal("degraded run evaluated no messages")
	}

	// Transient-only faults must not change a single reported number.
	cfg2 := base
	cfg2.Workers = 4
	cfg2.FaultTolerance = pipeline.FaultTolerance{Retry: testRetry()}
	cfg2.FaultInject = transientFirstAttempts("link", 6)
	res2, err := RunChurnExperiment(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *baseline, *res2
	if strings.Join(a.TopFeatures, ",") != strings.Join(b.TopFeatures, ",") {
		t.Fatal("top features differ under retried transient faults")
	}
	a.TopFeatures, b.TopFeatures = nil, nil
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("results differ under retried transient faults:\n%+v\n%+v", a, b)
	}
}

// TestChurnExperimentBudgetExceeded: too many dead letters fail the
// experiment rather than publish numbers over a gutted corpus.
func TestChurnExperimentBudgetExceeded(t *testing.T) {
	cfg := DefaultChurnExperimentConfig()
	cfg.World.NumCustomers = 200
	cfg.World.Emails = 400
	cfg.World.SMS = 0
	cfg.Workers = 4
	cfg.FaultTolerance = pipeline.FaultTolerance{MaxDeadLetters: 2}
	cfg.FaultInject = permanentOn("clean", 5)

	_, err := RunChurnExperiment(cfg)
	if err == nil {
		t.Fatal("budget-exceeding churn run reported success")
	}
	if !strings.Contains(err.Error(), "dead-letter budget") {
		t.Fatalf("error %q does not name the dead-letter budget", err)
	}
	if !strings.Contains(err.Error(), "injected permanent fault") {
		t.Fatalf("error %q does not carry the first dead-letter cause", err)
	}
}
