package core

import (
	"bivoc/internal/annotate"
	"bivoc/internal/clean"
	"bivoc/internal/mining"
	"bivoc/internal/synth"
)

// CatCompetitor is the semantic category of competitor-brand mentions.
const CatCompetitor = "competitor"

// EmailAssociationConfig drives the Figure 4 analysis: associate
// mentions of competitor brands in customer emails with the category
// assigned to each email, then drill from any cell to the documents.
type EmailAssociationConfig struct {
	World      synth.TelecomConfig
	Confidence float64
}

// DefaultEmailAssociationConfig returns the standard configuration.
func DefaultEmailAssociationConfig() EmailAssociationConfig {
	return EmailAssociationConfig{World: synth.DefaultTelecomConfig(), Confidence: 0.95}
}

// EmailAssociation is the assembled Figure 4 state.
type EmailAssociation struct {
	Index *mining.Index
	Table *mining.AssocTable
}

// buildCompetitorAnnotator maps competitor brand mentions to concepts.
func buildCompetitorAnnotator() *annotate.Engine {
	dict := annotate.NewDictionary()
	for _, comp := range synth.Competitors() {
		dict.Add(annotate.Entry{
			Surface: comp, PoS: annotate.PoSProperNoun,
			Canonical: comp, Category: CatCompetitor,
		})
	}
	return annotate.NewEngine(dict)
}

// RunEmailCategoryAnalysis cleans the email corpus, annotates competitor
// mentions, indexes each email under its assigned category, and builds
// the competitor × category association table (Figure 4's screen).
func RunEmailCategoryAnalysis(cfg EmailAssociationConfig) (*EmailAssociation, error) {
	world, err := synth.NewTelecomWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	cleaner := clean.NewCleaner()
	en := buildCompetitorAnnotator()
	ix := mining.NewIndex()
	for _, m := range world.Emails {
		cm := cleaner.ProcessEmail(m.Raw)
		if cm.Verdict != clean.VerdictKeep || m.Category == "" {
			continue
		}
		ix.Add(mining.Document{
			ID:       m.ID,
			Concepts: en.Annotate(cm.Text),
			Fields:   map[string]string{"category": m.Category},
			Time:     m.Month,
		})
	}
	var rows []mining.Dim
	for _, comp := range synth.Competitors() {
		rows = append(rows, mining.ConceptDim(CatCompetitor, comp))
	}
	var cols []mining.Dim
	for _, cat := range synth.EmailCategories() {
		cols = append(cols, mining.FieldDim("category", cat))
	}
	// The index is fully built; prepare it so the association table (and
	// any follow-on drill-downs over the returned Index) hit the sealed
	// query caches.
	ix.Prepare()
	tbl := ix.Associate(rows, cols, cfg.Confidence)
	return &EmailAssociation{Index: ix, Table: tbl}, nil
}
