package asr

import (
	"math"
	"sort"
	"strings"

	"bivoc/internal/lm"
	"bivoc/internal/phonetics"
)

func ln(v float64) float64 { return math.Log(v) }

// DecoderConfig tunes the beam search.
type DecoderConfig struct {
	// BeamWidth is the maximum number of live hypotheses kept per
	// observation position.
	BeamWidth int
	// WordPenalty is a log-space penalty applied at each word emission to
	// balance word insertions against deletions.
	WordPenalty float64
	// EpsilonRounds bounds the chains of non-consuming transitions (word
	// boundaries and phone deletions) explored per observation position.
	EpsilonRounds int
	// AllowedNames, when non-nil, restricts which ClassName words may be
	// emitted. This is the paper's second-pass mechanism: after linking
	// yields top-N candidate identities, "limit the number of conflicting
	// names to only N names ... in the LM" (§IV.A.1).
	AllowedNames map[string]bool
	// NameBonus is a log-space bonus added when emitting an allowed name
	// in constrained mode, reflecting the sharpened name prior.
	NameBonus float64
}

// DefaultDecoderConfig returns the standard first-pass configuration.
func DefaultDecoderConfig() DecoderConfig {
	return DecoderConfig{
		BeamWidth:     192,
		WordPenalty:   -1.2,
		EpsilonRounds: 3,
	}
}

// Decoder is a token-passing Viterbi beam decoder over a pronunciation
// trie with an N-gram language model.
type Decoder struct {
	lex *Lexicon
	lm  lm.Model
	em  *EmissionModel
	cfg DecoderConfig
}

// NewDecoder assembles a decoder. The emission model should be derived
// from the channel the audio passed through (estimated on held-out data
// in a real system).
func NewDecoder(lex *Lexicon, model lm.Model, em *EmissionModel, cfg DecoderConfig) *Decoder {
	if cfg.BeamWidth <= 0 {
		cfg.BeamWidth = 192
	}
	if cfg.EpsilonRounds <= 0 {
		cfg.EpsilonRounds = 3
	}
	return &Decoder{lex: lex, lm: model, em: em, cfg: cfg}
}

// hyp is one live hypothesis. Word history is a persistent linked list so
// hypotheses share structure.
type hyp struct {
	node  int32  // current trie node
	hist  *wlist // emitted words (reverse order)
	last  string // last emitted word ("" at start) — the LM context
	last2 string // word before last, used when the LM is a trigram
	score float64
	key   string // cached state key, set when offered to a beam
}

// lmContext returns the history the LM should condition on.
func (d *Decoder) lmContext(h *hyp) []string {
	if d.lm.Order() >= 3 && h.last2 != "" {
		return []string{h.last2, h.last}
	}
	if h.last != "" {
		return []string{h.last}
	}
	return nil
}

type wlist struct {
	word string
	prev *wlist
}

func (w *wlist) slice() []string {
	var rev []string
	for n := w; n != nil; n = n.prev {
		rev = append(rev, n.word)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type beam struct {
	byKey map[string]*hyp
}

func newBeam() *beam { return &beam{byKey: make(map[string]*hyp)} }

func stateKey(node int32, last, last2 string) string {
	var b strings.Builder
	b.Grow(14 + len(last) + len(last2))
	b.WriteString(last2)
	b.WriteByte(1)
	b.WriteString(last)
	b.WriteByte(0)
	// Encode the node id compactly.
	n := node
	for {
		b.WriteByte(byte('0' + n%10))
		n /= 10
		if n == 0 {
			break
		}
	}
	return b.String()
}

// offer merges h into the beam, keeping the best score per state. Equal
// scores keep the incumbent, which is deterministic because expansion
// order is deterministic (sorted beams, sorted trie edges, insertion-
// ordered homophone lists).
func (bm *beam) offer(h *hyp) {
	h.key = stateKey(h.node, h.last, h.last2)
	if cur, ok := bm.byKey[h.key]; !ok || h.score > cur.score {
		bm.byKey[h.key] = h
	}
}

// sortHyps orders hypotheses by score descending with a total tie-break
// on the state key, so pruning is reproducible.
func sortHyps(hs []*hyp) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].score != hs[j].score {
			return hs[i].score > hs[j].score
		}
		return hs[i].key < hs[j].key
	})
}

// prune keeps the top-width hypotheses.
func (bm *beam) prune(width int) []*hyp {
	hs := make([]*hyp, 0, len(bm.byKey))
	for _, h := range bm.byKey {
		hs = append(hs, h)
	}
	sortHyps(hs)
	if len(hs) > width {
		hs = hs[:width]
	}
	return hs
}

// emitWords expands word-boundary transitions from h (if its node ends
// any words), offering the successors to out.
func (d *Decoder) emitWords(h *hyp, out *beam) {
	for _, id := range d.lex.nodes[h.node].words {
		word := d.lex.words[id]
		bonus := 0.0
		if d.cfg.AllowedNames != nil && d.lex.classes[id] == ClassName {
			if !d.cfg.AllowedNames[word] {
				continue // constrained pass: name outside the top-N list
			}
			bonus = d.cfg.NameBonus
		}
		lp := d.lm.LogProb(d.lmContext(h), word)
		last2 := ""
		if d.lm.Order() >= 3 {
			last2 = h.last
		}
		out.offer(&hyp{
			node:  0,
			hist:  &wlist{word: word, prev: h.hist},
			last:  word,
			last2: last2,
			score: h.score + lp + d.cfg.WordPenalty + bonus,
		})
	}
}

// deletions expands a single trie advance without consuming observation.
func (d *Decoder) deletions(h *hyp, out *beam) {
	pen := d.em.DeletionPenalty()
	for _, e := range d.lex.nodes[h.node].edges {
		out.offer(&hyp{node: e.next, hist: h.hist, last: h.last, last2: h.last2, score: h.score + pen})
	}
}

// closure applies word emissions and deletions up to EpsilonRounds times,
// pruning between rounds.
func (d *Decoder) closure(hs []*hyp) []*hyp {
	bm := newBeam()
	for _, h := range hs {
		bm.offer(h)
	}
	frontier := hs
	for round := 0; round < d.cfg.EpsilonRounds; round++ {
		next := newBeam()
		for _, h := range frontier {
			d.emitWords(h, next)
			d.deletions(h, next)
		}
		var fresh []*hyp
		for k, h := range next.byKey {
			if cur, ok := bm.byKey[k]; !ok || h.score > cur.score {
				bm.byKey[k] = h
				fresh = append(fresh, h)
			}
		}
		if len(fresh) == 0 {
			break
		}
		sortHyps(fresh)
		if len(fresh) > d.cfg.BeamWidth {
			fresh = fresh[:d.cfg.BeamWidth]
		}
		frontier = fresh
	}
	return bm.prune(d.cfg.BeamWidth)
}

// Decode returns the best word sequence for the observed phones. An
// empty observation decodes to nil.
func (d *Decoder) Decode(observed []phonetics.Phone) []string {
	nbest := d.DecodeNBest(observed, 1)
	if len(nbest) == 0 {
		return nil
	}
	return nbest[0].Words
}

// Hypothesis is one N-best entry.
type Hypothesis struct {
	Words []string
	// Score is the total log-probability (acoustic + LM + penalties).
	Score float64
}

// DecodeNBest returns up to n complete-word hypotheses, best first. The
// list comes from the final beam, so it is a beam-limited N-best (as in
// multi-pass LVCSR systems, where a compact first-pass list feeds
// rescoring passes — the paper's §III mentions multi-pass recognition
// among the costly steps fast systems skip).
func (d *Decoder) DecodeNBest(observed []phonetics.Phone, n int) []Hypothesis {
	if len(observed) == 0 || n <= 0 {
		return nil
	}
	current := d.closure([]*hyp{{node: 0, last: "", score: 0}})
	insPen := d.em.InsertionPenalty()
	for _, o := range observed {
		next := newBeam()
		for _, h := range current {
			// Consume o by advancing a trie edge (match or substitution).
			for _, e := range d.lex.nodes[h.node].edges {
				next.offer(&hyp{
					node:  e.next,
					hist:  h.hist,
					last:  h.last,
					last2: h.last2,
					score: h.score + d.em.Score(o, e.phone),
				})
			}
			// Consume o as a spurious insertion.
			next.offer(&hyp{node: h.node, hist: h.hist, last: h.last, last2: h.last2, score: h.score + insPen})
		}
		current = d.closure(next.prune(d.cfg.BeamWidth))
	}
	// Final: hypotheses must sit at the trie root (all words complete);
	// apply the end-of-sentence LM transition.
	var finals []*hyp
	for _, h := range current {
		if h.node != 0 {
			continue
		}
		finals = append(finals, &hyp{
			node: 0, hist: h.hist, last: h.last, last2: h.last2, key: h.key,
			score: h.score + d.lm.LogProb(d.lmContext(h), lm.EOS),
		})
	}
	sortHyps(finals)
	if len(finals) > n {
		finals = finals[:n]
	}
	out := make([]Hypothesis, 0, len(finals))
	for _, h := range finals {
		if math.IsInf(h.score, -1) {
			continue
		}
		out = append(out, Hypothesis{Words: h.hist.slice(), Score: h.score})
	}
	return out
}

// Recognizer bundles lexicon, channel, emission model, LM and decoder
// configuration into the full ASR pipeline used by the BIVoC experiments:
// reference words → phones → noisy channel → decode → transcript.
type Recognizer struct {
	Lex     *Lexicon
	Model   lm.Model
	Channel *Channel
	decoder *Decoder
}

// NewRecognizer builds a recognizer whose decoder emission model matches
// the channel configuration.
func NewRecognizer(lex *Lexicon, model lm.Model, ch *Channel, cfg DecoderConfig) *Recognizer {
	em := NewEmissionModel(ch.Config())
	return &Recognizer{
		Lex: lex, Model: model, Channel: ch,
		decoder: NewDecoder(lex, model, em, cfg),
	}
}

// Decoder returns the underlying decoder (for constrained re-decoding).
func (r *Recognizer) Decoder() *Decoder { return r.decoder }

// WithNameConstraint returns a new Recognizer sharing this one's lexicon,
// LM and channel but restricting name emissions to the given set — the
// second-pass configuration of §IV.A.1.
func (r *Recognizer) WithNameConstraint(names map[string]bool, bonus float64) *Recognizer {
	cfg := r.decoder.cfg
	cfg.AllowedNames = names
	cfg.NameBonus = bonus
	return &Recognizer{
		Lex: r.Lex, Model: r.Model, Channel: r.Channel,
		decoder: NewDecoder(r.Lex, r.Model, NewEmissionModel(r.Channel.Config()), cfg),
	}
}
