package asr

import (
	"reflect"
	"strings"
	"testing"

	"bivoc/internal/lm"
	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
)

func rescoreSetup(t *testing.T) *Recognizer {
	t.Helper()
	lex, model := testSetup(t)
	_ = model
	tr := lm.NewTrainer(2)
	tr.Add(strings.Fields("my name is smith"))
	tr.Add(strings.Fields("i want to book a car"))
	m, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	return NewRecognizer(lex, m, NewChannel(CallCenterChannel), DefaultDecoderConfig())
}

func TestAlignWordSpansExact(t *testing.T) {
	rec := rescoreSetup(t)
	words := []string{"my", "name", "is", "smith"}
	obs, err := rec.Lex.Phones(words)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := rec.Lex.AlignWordSpans(words, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(words) {
		t.Fatalf("%d spans for %d words", len(spans), len(words))
	}
	// Spans must be contiguous, ordered and cover the observation.
	if spans[0].Start != 0 || spans[len(spans)-1].End != len(obs) {
		t.Errorf("spans do not cover observation: %v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Errorf("spans not contiguous: %v", spans)
		}
	}
	// With a clean observation each span length equals the word's
	// pronunciation length.
	for i, w := range words {
		p, _ := rec.Lex.Pronunciation(w)
		if spans[i].End-spans[i].Start != len(p) {
			t.Errorf("word %q span %v, pron length %d", w, spans[i], len(p))
		}
	}
}

func TestAlignWordSpansNoisy(t *testing.T) {
	rec := rescoreSetup(t)
	words := []string{"my", "name", "is", "smith"}
	clean, err := rec.Lex.Phones(words)
	if err != nil {
		t.Fatal(err)
	}
	obs := rec.Channel.Corrupt(rng.New(3), clean)
	spans, err := rec.Lex.AlignWordSpans(words, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(words) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range spans {
		if spans[i].Start > spans[i].End || spans[i].End > len(obs) {
			t.Errorf("invalid span %v for obs length %d", spans[i], len(obs))
		}
	}
}

func TestAlignWordSpansErrors(t *testing.T) {
	rec := rescoreSetup(t)
	if _, err := rec.Lex.AlignWordSpans([]string{"zzznotaword"}, nil); err == nil {
		t.Error("out-of-lexicon word should fail alignment")
	}
	spans, err := rec.Lex.AlignWordSpans(nil, nil)
	if err != nil || spans != nil {
		t.Error("empty words should align to nothing")
	}
}

func TestRescoreNamesFixesSubstitutedName(t *testing.T) {
	rec := rescoreSetup(t)
	// Observation is clean phones for "my name is smith", but the first
	// pass (simulated) substituted the confusable "smyth"... rescoring
	// with the truth allowed should pick the candidate closest to the
	// observation. Here the observation IS smith, so smith must win.
	obs, err := rec.Lex.Phones([]string{"my", "name", "is", "smith"})
	if err != nil {
		t.Fatal(err)
	}
	first := []string{"my", "name", "is", "jones"}
	out := rec.RescoreNames(first, obs, map[string]bool{"smith": true, "davis": true})
	if out[3] != "smith" {
		t.Errorf("rescore picked %q, want smith", out[3])
	}
	// Non-name words are untouched.
	if !reflect.DeepEqual(out[:3], first[:3]) {
		t.Errorf("non-name words changed: %v", out)
	}
}

func TestRescoreNamesKeepsIncumbentWhenClosest(t *testing.T) {
	rec := rescoreSetup(t)
	obs, err := rec.Lex.Phones([]string{"my", "name", "is", "jones"})
	if err != nil {
		t.Fatal(err)
	}
	first := []string{"my", "name", "is", "jones"}
	out := rec.RescoreNames(first, obs, map[string]bool{"smith": true, "miller": true})
	if out[3] != "jones" {
		t.Errorf("incumbent lost to farther candidate: %v", out)
	}
}

func TestRescoreNamesNoCandidatesNoChange(t *testing.T) {
	rec := rescoreSetup(t)
	first := []string{"my", "name", "is", "jones"}
	if got := rec.RescoreNames(first, nil, nil); !reflect.DeepEqual(got, first) {
		t.Errorf("empty candidate set changed output: %v", got)
	}
	if got := rec.RescoreNames(nil, nil, map[string]bool{"smith": true}); got != nil {
		t.Errorf("empty transcript rescored: %v", got)
	}
}

func TestRescoreNamesIgnoresUnknownCandidates(t *testing.T) {
	rec := rescoreSetup(t)
	obs, err := rec.Lex.Phones([]string{"my", "name", "is", "jones"})
	if err != nil {
		t.Fatal(err)
	}
	first := []string{"my", "name", "is", "jones"}
	out := rec.RescoreNames(first, obs, map[string]bool{"zzznotinlexicon": true})
	if !reflect.DeepEqual(out, first) {
		t.Errorf("unknown candidate affected output: %v", out)
	}
}

func TestRescoreNamesDeterministicTie(t *testing.T) {
	rec := rescoreSetup(t)
	// Homophones "smith"/"smyth" (identical pronunciations): allowed set
	// containing both must resolve deterministically across runs.
	obs, err := rec.Lex.Phones([]string{"my", "name", "is", "smith"})
	if err != nil {
		t.Fatal(err)
	}
	first := []string{"my", "name", "is", "jones"}
	allowed := map[string]bool{"smith": true, "smyth": true}
	a := rec.RescoreNames(first, obs, allowed)
	b := rec.RescoreNames(first, obs, allowed)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tie resolution nondeterministic: %v vs %v", a, b)
	}
}

func TestDecodeDeterministic(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())
	ref := strings.Fields("my name is smith i want to book a car")
	phones, err := lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	obs := rec.Channel.Corrupt(rng.New(77), phones)
	a := rec.TranscribePhones(obs)
	b := rec.TranscribePhones(obs)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("decode nondeterministic: %v vs %v", a, b)
	}
}

func TestTrieEdgesSorted(t *testing.T) {
	lex := NewLexicon()
	lex.AddAll([]string{"zebra", "apple", "mango", "book", "cat", "dog"}, ClassGeneric)
	for i, n := range lex.nodes {
		for j := 1; j < len(n.edges); j++ {
			if n.edges[j].phone <= n.edges[j-1].phone {
				t.Fatalf("node %d edges unsorted: %v", i, n.edges)
			}
		}
	}
}

func TestTrieChildLookup(t *testing.T) {
	lex := NewLexicon()
	if err := lex.Add("cat", ClassGeneric); err != nil {
		t.Fatal(err)
	}
	root := &lex.nodes[0]
	if root.child(phonetics.K) < 0 {
		t.Error("missing K edge at root")
	}
	if root.child(phonetics.ZH) >= 0 {
		t.Error("phantom edge at root")
	}
}
