package asr

import (
	"errors"

	"bivoc/internal/phonetics"
)

// Span is the half-open observation range [Start, End) a decoded word is
// aligned to.
type Span struct {
	Start, End int
}

// AlignWordSpans force-aligns a decoded word sequence to the observed
// phone sequence, returning one span per word. The alignment minimizes
// the weighted phone edit distance between the concatenated lexicon
// pronunciations and the observation. Out-of-lexicon words fail.
func (l *Lexicon) AlignWordSpans(words []string, observed []phonetics.Phone) ([]Span, error) {
	if len(words) == 0 {
		return nil, nil
	}
	// Flatten pronunciations, remembering word boundaries.
	var flat []phonetics.Phone
	bounds := make([]int, 0, len(words)+1)
	bounds = append(bounds, 0)
	for _, w := range words {
		p, ok := l.Pronunciation(w)
		if !ok {
			return nil, errors.New("asr: cannot align out-of-lexicon word " + w)
		}
		flat = append(flat, p...)
		bounds = append(bounds, len(flat))
	}
	la, lb := len(flat), len(observed)
	const indel = 0.7
	// dp[i][j]: cost of aligning flat[:i] with observed[:j].
	dp := make([][]float64, la+1)
	for i := range dp {
		dp[i] = make([]float64, lb+1)
	}
	for i := 1; i <= la; i++ {
		dp[i][0] = float64(i) * indel
	}
	for j := 1; j <= lb; j++ {
		dp[0][j] = float64(j) * indel
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			sub := dp[i-1][j-1]
			if flat[i-1] != observed[j-1] {
				if phonetics.ClassOf(flat[i-1]) == phonetics.ClassOf(observed[j-1]) {
					sub += 0.5
				} else {
					sub += 1.0
				}
			}
			best := sub
			if v := dp[i-1][j] + indel; v < best {
				best = v
			}
			if v := dp[i][j-1] + indel; v < best {
				best = v
			}
			dp[i][j] = best
		}
	}
	// Backtrace, recording for each flat index the observation index it
	// was consumed at.
	obsAt := make([]int, la+1) // obsAt[i] = obs position after aligning flat[:i]
	i, j := la, lb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && equalsStep(dp, flat, observed, i, j):
			obsAt[i] = j
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+indel:
			obsAt[i] = j
			i--
		default:
			j--
		}
	}
	// Convert word boundaries to observation spans.
	spans := make([]Span, len(words))
	for w := range words {
		startFlat, endFlat := bounds[w], bounds[w+1]
		var s, e int
		if startFlat == 0 {
			s = 0
		} else {
			s = obsAt[startFlat]
		}
		e = obsAt[endFlat]
		if e < s {
			e = s
		}
		if e > lb {
			e = lb
		}
		spans[w] = Span{Start: s, End: e}
	}
	return spans, nil
}

func equalsStep(dp [][]float64, flat, observed []phonetics.Phone, i, j int) bool {
	sub := dp[i-1][j-1]
	if flat[i-1] != observed[j-1] {
		if phonetics.ClassOf(flat[i-1]) == phonetics.ClassOf(observed[j-1]) {
			sub += 0.5
		} else {
			sub += 1.0
		}
	}
	return dp[i][j] == sub
}

// RescoreNames is the slot-level constrained second pass of §IV.A.1:
// given the first-pass transcript, the observed phones, and the
// candidate name inventory from database linking, each name-class word
// is re-decoded in isolation — the observation span it aligns to is
// matched against every allowed name's pronunciation, and the
// phonetically closest wins (the incumbent word competes too, so the
// rescoring never makes an aligned span worse under the phone metric).
func (r *Recognizer) RescoreNames(first []string, observed []phonetics.Phone, allowed map[string]bool) []string {
	if len(allowed) == 0 || len(first) == 0 {
		return first
	}
	spans, err := r.Lex.AlignWordSpans(first, observed)
	if err != nil {
		return first
	}
	// Deterministic candidate order.
	candidates := make([]string, 0, len(allowed))
	for n := range allowed {
		if r.Lex.Contains(n) {
			candidates = append(candidates, n)
		}
	}
	sortStrings(candidates)
	out := make([]string, len(first))
	copy(out, first)
	for i, w := range first {
		if r.Lex.ClassOfWord(w) != ClassName {
			continue
		}
		span := observed[spans[i].Start:spans[i].End]
		if len(span) == 0 {
			continue
		}
		bestWord := w
		bestDist := phoneDistTo(r.Lex, w, span)
		for _, cand := range candidates {
			if cand == w {
				continue
			}
			if d := phoneDistTo(r.Lex, cand, span); d < bestDist {
				bestDist = d
				bestWord = cand
			}
		}
		out[i] = bestWord
	}
	return out
}

func phoneDistTo(lex *Lexicon, word string, span []phonetics.Phone) float64 {
	pron, ok := lex.Pronunciation(word)
	if !ok {
		return 1e9
	}
	return phonetics.PhoneDistance(pron, span)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
