package asr

import (
	"math"
	"strings"
	"testing"

	"bivoc/internal/lm"
	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
)

func spotterSetup(t *testing.T) (*Spotter, *Recognizer) {
	t.Helper()
	lex, _ := testSetup(t)
	tr := lm.NewTrainer(2)
	tr.Add(strings.Fields("i want a discount please"))
	model, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())
	return NewSpotter(lex), rec
}

func TestSpotterFindsCleanKeyword(t *testing.T) {
	sp, _ := spotterSetup(t)
	ref := strings.Fields("i want a discount please")
	hits := sp.SpotWords("discount", ref)
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Confidence < 0.95 {
		t.Errorf("clean confidence = %v", hits[0].Confidence)
	}
	// The span should sit inside the utterance, not cover it all.
	phones, _ := sp.lex.Phones(ref)
	if hits[0].Span.End-hits[0].Span.Start >= len(phones) {
		t.Errorf("span too wide: %v of %d", hits[0].Span, len(phones))
	}
}

func TestSpotterRejectsAbsentKeyword(t *testing.T) {
	sp, _ := spotterSetup(t)
	ref := strings.Fields("i want to book a car")
	if hits := sp.SpotWords("discount", ref); len(hits) != 0 {
		t.Errorf("false alarm: %v", hits)
	}
}

func TestSpotterSurvivesChannelNoise(t *testing.T) {
	sp, rec := spotterSetup(t)
	ref := strings.Fields("i want a discount please")
	phones, err := rec.Lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	found := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		obs := rec.Channel.Corrupt(r.Split(uint64(i)), phones)
		sp.Threshold = 0.5
		if hits := sp.Find("discount", obs); len(hits) > 0 {
			found++
		}
	}
	if found < trials*2/3 {
		t.Errorf("spotting recall under noise: %d/%d", found, trials)
	}
}

func TestSpotterUnknownKeyword(t *testing.T) {
	sp, _ := spotterSetup(t)
	obs := mustPhones(t, sp.lex, strings.Fields("i want a car"))
	if hits := sp.Find("zzznotaword", obs); hits != nil {
		t.Errorf("unknown keyword spotted: %v", hits)
	}
}

func TestSpotterMultipleOccurrences(t *testing.T) {
	sp, _ := spotterSetup(t)
	ref := strings.Fields("discount please discount")
	hits := sp.SpotWords("discount", ref)
	if len(hits) != 2 {
		t.Fatalf("expected 2 hits, got %v", hits)
	}
	// Hits must not overlap.
	a, b := hits[0].Span, hits[1].Span
	if a.Start < b.End && b.Start < a.End {
		t.Errorf("overlapping hits: %v %v", a, b)
	}
}

func TestSpotterFindAll(t *testing.T) {
	sp, _ := spotterSetup(t)
	ref := strings.Fields("i want a discount please")
	got := sp.FindAll([]string{"discount", "please", "smith"}, mustPhones(t, sp.lex, ref))
	if len(got["discount"]) != 1 || len(got["please"]) != 1 {
		t.Errorf("FindAll = %v", got)
	}
	if _, ok := got["smith"]; ok {
		t.Errorf("phantom keyword: %v", got["smith"])
	}
}

func mustPhones(t *testing.T, lex *Lexicon, words []string) []phonetics.Phone {
	t.Helper()
	p, err := lex.Phones(words)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLogOddsScore(t *testing.T) {
	if LogOddsScore(0.5) != 0 {
		t.Errorf("log odds at 0.5 = %v", LogOddsScore(0.5))
	}
	if LogOddsScore(0.9) <= 0 || LogOddsScore(0.1) >= 0 {
		t.Error("log odds signs wrong")
	}
	if math.IsInf(LogOddsScore(0), 0) || math.IsInf(LogOddsScore(1), 0) {
		t.Error("log odds should clamp at boundaries")
	}
}

func TestSpotterEmptyObservation(t *testing.T) {
	sp, _ := spotterSetup(t)
	if hits := sp.Find("discount", nil); hits != nil {
		t.Errorf("empty observation spotted: %v", hits)
	}
}
