// Package asr is the automatic-speech-recognition substrate of BIVoC.
//
// The paper's engine (§IV.A.1) is an HMM/GMM large-vocabulary recognizer
// trained on 210 hours of call-centre audio. Audio and acoustic models
// are not reproducible, so this package substitutes the *error process*:
// a reference utterance is converted to its phone string through a shared
// pronunciation lexicon, the phone string is corrupted by an articulatory
// noisy channel (substitutions biased within sound classes, deletions,
// insertions, cross-talk bursts), and a real token-passing Viterbi beam
// decoder with an interpolated N-gram language model converts the noisy
// phones back into words.
//
// Because decoding goes through a lexicon of confusable pronunciations
// and a language model, the transcripts exhibit the phenomena the paper
// reports: similar-sounding names substituted for each other, partial
// digit strings, function words hallucinated by the LM — at an overall
// word error rate calibrated to Table I (45% speech, 65% names, 45%
// numbers).
package asr

import (
	"errors"
	"fmt"
	"strings"

	"bivoc/internal/phonetics"
)

// WordClass labels lexicon entries by the entity class Table I scores.
type WordClass uint8

// Word classes.
const (
	ClassGeneric WordClass = iota
	ClassName              // person given/surnames — hardest per Table I
	ClassDigit             // spoken digit words
	ClassPlace             // locations; scored with generic speech
)

func (c WordClass) String() string {
	switch c {
	case ClassName:
		return "name"
	case ClassDigit:
		return "digit"
	case ClassPlace:
		return "place"
	default:
		return "generic"
	}
}

// Lexicon maps words to pronunciations and owns the decoding trie.
type Lexicon struct {
	words   []string
	classes []WordClass
	prons   [][]phonetics.Phone
	index   map[string]int32
	// trie over phones: nodes store child edges and word ids that end
	// there (homophones share a final node).
	nodes []trieNode
}

// trieEdge is one labeled child link. Edges are kept sorted by phone so
// that decoding expansions are deterministic — beam ties between
// homophones must break the same way on every run.
type trieEdge struct {
	phone phonetics.Phone
	next  int32
}

type trieNode struct {
	edges []trieEdge // sorted by phone
	words []int32    // lexicon ids of words whose pronunciation ends here
}

// child returns the node reached by phone p, or -1.
func (n *trieNode) child(p phonetics.Phone) int32 {
	lo, hi := 0, len(n.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.edges[mid].phone < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.edges) && n.edges[lo].phone == p {
		return n.edges[lo].next
	}
	return -1
}

// addChild inserts a new edge keeping the slice sorted, returning the
// new child's id.
func (l *Lexicon) addChild(node int32, p phonetics.Phone) int32 {
	next := int32(len(l.nodes))
	l.nodes = append(l.nodes, trieNode{})
	edges := l.nodes[node].edges
	pos := len(edges)
	for i, e := range edges {
		if e.phone > p {
			pos = i
			break
		}
	}
	edges = append(edges, trieEdge{})
	copy(edges[pos+1:], edges[pos:])
	edges[pos] = trieEdge{phone: p, next: next}
	l.nodes[node].edges = edges
	return next
}

// NewLexicon returns an empty lexicon with a trie root.
func NewLexicon() *Lexicon {
	return &Lexicon{
		index: make(map[string]int32),
		nodes: []trieNode{{}},
	}
}

// Add inserts a word with the given class, deriving its pronunciation
// from the rule-based G2P. Duplicate adds are ignored (first class wins).
// Words that produce no phones (pure digits, punctuation) are rejected.
func (l *Lexicon) Add(word string, class WordClass) error {
	word = strings.ToLower(word)
	if _, ok := l.index[word]; ok {
		return nil
	}
	pron := phonetics.ToPhones(word)
	if len(pron) == 0 {
		return fmt.Errorf("asr: word %q has no pronunciation", word)
	}
	id := int32(len(l.words))
	l.words = append(l.words, word)
	l.classes = append(l.classes, class)
	l.prons = append(l.prons, pron)
	l.index[word] = id

	// Insert into the trie.
	node := int32(0)
	for _, p := range pron {
		next := l.nodes[node].child(p)
		if next < 0 {
			next = l.addChild(node, p)
		}
		node = next
	}
	l.nodes[node].words = append(l.nodes[node].words, id)
	return nil
}

// AddAll inserts all words with the class, skipping unpronounceable ones.
func (l *Lexicon) AddAll(words []string, class WordClass) {
	for _, w := range words {
		_ = l.Add(w, class) // unpronounceable entries are simply absent
	}
}

// Size returns the number of words in the lexicon.
func (l *Lexicon) Size() int { return len(l.words) }

// Contains reports whether word is in the lexicon.
func (l *Lexicon) Contains(word string) bool {
	_, ok := l.index[strings.ToLower(word)]
	return ok
}

// Word returns the surface form for a lexicon id.
func (l *Lexicon) Word(id int32) string { return l.words[id] }

// Class returns the word class for a lexicon id.
func (l *Lexicon) Class(id int32) WordClass { return l.classes[id] }

// ClassOfWord returns the class of a word, or ClassGeneric if absent.
func (l *Lexicon) ClassOfWord(word string) WordClass {
	if id, ok := l.index[strings.ToLower(word)]; ok {
		return l.classes[id]
	}
	return ClassGeneric
}

// Pronunciation returns the phone sequence of word, with ok=false for
// out-of-lexicon words.
func (l *Lexicon) Pronunciation(word string) ([]phonetics.Phone, bool) {
	id, ok := l.index[strings.ToLower(word)]
	if !ok {
		return nil, false
	}
	return l.prons[id], true
}

// Phones converts a word sequence to its phone string, returning an
// error on the first out-of-lexicon word. Utterance generators call this
// to produce the channel input.
func (l *Lexicon) Phones(words []string) ([]phonetics.Phone, error) {
	var out []phonetics.Phone
	for _, w := range words {
		p, ok := l.Pronunciation(w)
		if !ok {
			return nil, errors.New("asr: out-of-lexicon word " + w)
		}
		out = append(out, p...)
	}
	return out, nil
}

// WordsOfClass returns all lexicon words of the given class.
func (l *Lexicon) WordsOfClass(c WordClass) []string {
	var out []string
	for i, w := range l.words {
		if l.classes[i] == c {
			out = append(out, w)
		}
	}
	return out
}
