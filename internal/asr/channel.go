package asr

import (
	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
)

// ChannelConfig parameterizes the acoustic noisy channel. The paper
// (§III.A) attributes transcription noise to cross-talk, key strokes,
// breathing, hold music, false starts, channel differences and speaking
// style; here those collapse into phone-level substitution, deletion and
// insertion rates plus burst noise that wipes short spans (cross-talk).
type ChannelConfig struct {
	// SubProb is the per-phone probability of substitution.
	SubProb float64
	// SameClassBias is the probability that a substitution stays within
	// the articulatory class (vowels for vowels, stops for stops...).
	SameClassBias float64
	// DelProb is the per-phone deletion probability.
	DelProb float64
	// InsProb is the probability of inserting a spurious phone after each
	// true phone.
	InsProb float64
	// BurstProb is the per-phone probability that a cross-talk burst
	// begins; a burst replaces the next BurstLen phones with random ones.
	BurstProb float64
	// BurstLen is the length of a cross-talk burst in phones.
	BurstLen int
}

// Predefined channel operating points.
var (
	// CleanChannel approximates read speech in a quiet room.
	CleanChannel = ChannelConfig{
		SubProb: 0.04, SameClassBias: 0.85, DelProb: 0.02, InsProb: 0.01,
		BurstProb: 0.000, BurstLen: 3,
	}
	// TelephoneChannel approximates conversational telephone speech,
	// the 20-40% WER regime the paper cites from the literature.
	TelephoneChannel = ChannelConfig{
		SubProb: 0.12, SameClassBias: 0.8, DelProb: 0.05, InsProb: 0.03,
		BurstProb: 0.004, BurstLen: 3,
	}
	// CallCenterChannel is the paper's operating point: call-centre audio
	// with cross-talk, key strokes and hold music, landing near Table I
	// (45% overall WER).
	CallCenterChannel = ChannelConfig{
		SubProb: 0.14, SameClassBias: 0.75, DelProb: 0.06, InsProb: 0.04,
		BurstProb: 0.010, BurstLen: 4,
	}
)

// Scale returns a copy of the config with all noise rates multiplied by
// f (clamped to [0, 0.9] each). This implements the paper's observation
// that faster, cheaper decoding configurations trade speed for WER.
func (c ChannelConfig) Scale(f float64) ChannelConfig {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 0.9 {
			return 0.9
		}
		return v
	}
	c.SubProb = clamp(c.SubProb * f)
	c.DelProb = clamp(c.DelProb * f)
	c.InsProb = clamp(c.InsProb * f)
	c.BurstProb = clamp(c.BurstProb * f)
	return c
}

// Channel corrupts phone sequences under a config.
type Channel struct {
	cfg ChannelConfig
}

// NewChannel returns a channel with the given config.
func NewChannel(cfg ChannelConfig) *Channel {
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 3
	}
	return &Channel{cfg: cfg}
}

// Config returns the channel's configuration.
func (ch *Channel) Config() ChannelConfig { return ch.cfg }

// substitute picks a replacement phone for p, staying within p's
// articulatory class with probability SameClassBias.
func (ch *Channel) substitute(r *rng.RNG, p phonetics.Phone) phonetics.Phone {
	if r.Bool(ch.cfg.SameClassBias) {
		members := phonetics.ClassMembers(phonetics.ClassOf(p))
		if len(members) > 1 {
			for {
				q := rng.Pick(r, members)
				if q != p {
					return q
				}
			}
		}
	}
	for {
		q := rng.Pick(r, phonetics.AllPhones())
		if q != p {
			return q
		}
	}
}

// Corrupt passes phones through the channel, returning the observed
// sequence. The input is not modified.
func (ch *Channel) Corrupt(r *rng.RNG, phones []phonetics.Phone) []phonetics.Phone {
	out := make([]phonetics.Phone, 0, len(phones)+4)
	burst := 0
	for _, p := range phones {
		if burst == 0 && r.Bool(ch.cfg.BurstProb) {
			burst = ch.cfg.BurstLen
		}
		switch {
		case burst > 0:
			burst--
			// Cross-talk: the true phone is masked by another speaker.
			out = append(out, rng.Pick(r, phonetics.AllPhones()))
		case r.Bool(ch.cfg.DelProb):
			// dropped
		case r.Bool(ch.cfg.SubProb):
			out = append(out, ch.substitute(r, p))
		default:
			out = append(out, p)
		}
		if r.Bool(ch.cfg.InsProb) {
			out = append(out, rng.Pick(r, phonetics.AllPhones()))
		}
	}
	return out
}

// EmissionModel gives the decoder's view of the channel: log-likelihoods
// of observing phone o when the lexicon expects phone p, plus insertion
// and deletion log-penalties. It is derived from a ChannelConfig so the
// decoder is matched (but not oracle-matched: it has no access to the
// realized noise, only the rates).
type EmissionModel struct {
	match    float64                  // log P(observe p | true p)
	subSame  float64                  // log P per same-class substitute
	subDiff  float64                  // log P per cross-class substitute
	logDel   float64                  // log P(phone deleted)
	logIns   float64                  // log P(spurious phone)
	sameSets [phonetics.NumPhones]int // size of each phone's class
}

// NewEmissionModel derives decoding likelihoods from channel rates.
func NewEmissionModel(cfg ChannelConfig) *EmissionModel {
	// Effective substitution probability folds in burst corruption.
	sub := cfg.SubProb + cfg.BurstProb*float64(cfg.BurstLen)
	if sub > 0.45 {
		sub = 0.45
	}
	if sub < 1e-4 {
		sub = 1e-4
	}
	del := cfg.DelProb
	if del < 1e-4 {
		del = 1e-4
	}
	ins := cfg.InsProb
	if ins < 1e-4 {
		ins = 1e-4
	}
	m := &EmissionModel{}
	pMatch := 1 - sub
	// Substitution mass splits SameClassBias within class, rest across.
	for p := 0; p < phonetics.NumPhones; p++ {
		m.sameSets[p] = len(phonetics.ClassMembers(phonetics.ClassOf(phonetics.Phone(p))))
	}
	// Log-space; class sizes are folded in per-phone in Score because the
	// class size varies, so store the shared pieces here.
	m.match = logf(pMatch)
	m.subSame = logf(sub * cfg.SameClassBias)
	m.subDiff = logf(sub * (1 - cfg.SameClassBias) / float64(phonetics.NumPhones-2))
	m.logDel = logf(del)
	m.logIns = logf(ins / float64(phonetics.NumPhones-1))
	return m
}

func logf(v float64) float64 {
	if v <= 0 {
		v = 1e-12
	}
	return ln(v)
}

// Score returns log P(observed | expected).
func (m *EmissionModel) Score(observed, expected phonetics.Phone) float64 {
	if observed == expected {
		return m.match
	}
	if phonetics.ClassOf(observed) == phonetics.ClassOf(expected) {
		n := m.sameSets[expected] - 1
		if n < 1 {
			n = 1
		}
		return m.subSame - ln(float64(n))
	}
	return m.subDiff
}

// DeletionPenalty returns the log-penalty for advancing the lexicon trie
// without consuming an observed phone.
func (m *EmissionModel) DeletionPenalty() float64 { return m.logDel }

// InsertionPenalty returns the log-penalty for consuming an observed
// phone without advancing the trie.
func (m *EmissionModel) InsertionPenalty() float64 { return m.logIns }
