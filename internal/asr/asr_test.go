package asr

import (
	"strings"
	"testing"
	"testing/quick"

	"bivoc/internal/lm"
	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
)

// --- Lexicon tests ---

func TestLexiconAddAndLookup(t *testing.T) {
	lex := NewLexicon()
	if err := lex.Add("Car", ClassGeneric); err != nil {
		t.Fatal(err)
	}
	if err := lex.Add("smith", ClassName); err != nil {
		t.Fatal(err)
	}
	if lex.Size() != 2 {
		t.Errorf("size = %d", lex.Size())
	}
	if !lex.Contains("CAR") || !lex.Contains("car") {
		t.Error("lookup should be case-insensitive")
	}
	if lex.ClassOfWord("smith") != ClassName {
		t.Error("class lost")
	}
	if lex.ClassOfWord("unknown") != ClassGeneric {
		t.Error("unknown word should be generic")
	}
	if _, ok := lex.Pronunciation("car"); !ok {
		t.Error("pronunciation missing")
	}
	if _, ok := lex.Pronunciation("zebra"); ok {
		t.Error("absent word should not have pronunciation")
	}
}

func TestLexiconDuplicateAdd(t *testing.T) {
	lex := NewLexicon()
	if err := lex.Add("smith", ClassName); err != nil {
		t.Fatal(err)
	}
	if err := lex.Add("smith", ClassGeneric); err != nil {
		t.Fatal(err)
	}
	if lex.Size() != 1 {
		t.Errorf("duplicate add changed size: %d", lex.Size())
	}
	if lex.ClassOfWord("smith") != ClassName {
		t.Error("first class should win")
	}
}

func TestLexiconRejectsUnpronounceable(t *testing.T) {
	lex := NewLexicon()
	if err := lex.Add("12345", ClassGeneric); err == nil {
		t.Error("digit string should be rejected (spell digits first)")
	}
}

func TestLexiconPhonesConcatenation(t *testing.T) {
	lex := NewLexicon()
	for _, w := range []string{"book", "a", "car"} {
		if err := lex.Add(w, ClassGeneric); err != nil {
			t.Fatal(err)
		}
	}
	got, err := lex.Phones([]string{"book", "a", "car"})
	if err != nil {
		t.Fatal(err)
	}
	var want []phonetics.Phone
	for _, w := range []string{"book", "a", "car"} {
		p, _ := lex.Pronunciation(w)
		want = append(want, p...)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := lex.Phones([]string{"book", "zebra"}); err == nil {
		t.Error("out-of-lexicon should error")
	}
}

func TestWordsOfClass(t *testing.T) {
	lex := NewLexicon()
	lex.AddAll([]string{"smith", "jones"}, ClassName)
	lex.AddAll([]string{"car", "rate"}, ClassGeneric)
	names := lex.WordsOfClass(ClassName)
	if len(names) != 2 {
		t.Errorf("names = %v", names)
	}
}

// --- Channel tests ---

func TestCleanChannelMostlyIdentity(t *testing.T) {
	ch := NewChannel(ChannelConfig{SubProb: 0, DelProb: 0, InsProb: 0, BurstProb: 0})
	r := rng.New(1)
	in := phonetics.ToPhones("reservation")
	out := ch.Corrupt(r, in)
	if len(out) != len(in) {
		t.Fatalf("noiseless channel changed length: %v vs %v", out, in)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("noiseless channel altered phones")
		}
	}
}

func TestChannelRatesRealized(t *testing.T) {
	cfg := ChannelConfig{SubProb: 0.2, SameClassBias: 0.8, DelProb: 0.1, InsProb: 0.05}
	ch := NewChannel(cfg)
	r := rng.New(7)
	var in []phonetics.Phone
	for i := 0; i < 20000; i++ {
		in = append(in, phonetics.AllPhones()[i%39])
	}
	out := ch.Corrupt(r, in)
	// Expected length = N(1 - del + ins).
	expected := float64(len(in)) * (1 - cfg.DelProb + cfg.InsProb)
	if ratio := float64(len(out)) / expected; ratio < 0.97 || ratio > 1.03 {
		t.Errorf("length ratio %v off expectation", ratio)
	}
}

func TestChannelDeterministicPerSeed(t *testing.T) {
	ch := NewChannel(CallCenterChannel)
	in := phonetics.ToPhones("reservation")
	a := ch.Corrupt(rng.New(5), in)
	b := ch.Corrupt(rng.New(5), in)
	if len(a) != len(b) {
		t.Fatal("non-deterministic channel")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic channel")
		}
	}
}

func TestChannelScale(t *testing.T) {
	scaled := CallCenterChannel.Scale(2)
	if scaled.SubProb <= CallCenterChannel.SubProb {
		t.Error("scaling up should increase sub rate")
	}
	if capped := CallCenterChannel.Scale(100); capped.SubProb > 0.9 {
		t.Error("scaling must clamp")
	}
	if zero := CallCenterChannel.Scale(0); zero.SubProb != 0 {
		t.Error("zero scale should zero rates")
	}
}

func TestEmissionModelPrefersMatch(t *testing.T) {
	em := NewEmissionModel(CallCenterChannel)
	match := em.Score(phonetics.B, phonetics.B)
	same := em.Score(phonetics.D, phonetics.B) // same class (voiced stops)
	diff := em.Score(phonetics.S, phonetics.B) // different class
	if !(match > same && same > diff) {
		t.Errorf("ordering wrong: match=%v same=%v diff=%v", match, same, diff)
	}
	if em.DeletionPenalty() >= 0 || em.InsertionPenalty() >= 0 {
		t.Error("penalties must be negative log-probs")
	}
}

// --- Alignment / WER tests ---

func TestAlignPerfect(t *testing.T) {
	pairs := Align([]string{"a", "b"}, []string{"a", "b"})
	for _, p := range pairs {
		if p.Op != OpMatch {
			t.Fatalf("unexpected op in %v", pairs)
		}
	}
}

func TestAlignCounts(t *testing.T) {
	ref := strings.Fields("i want to book a car")
	hyp := strings.Fields("i want book a blue car")
	var st WERStats
	st.Add(Align(ref, hyp))
	// "to" deleted, "blue" inserted.
	if st.Del != 1 || st.Ins != 1 || st.Sub != 0 {
		t.Errorf("S/D/I = %d/%d/%d", st.Sub, st.Del, st.Ins)
	}
	if st.RefWords != 6 {
		t.Errorf("N = %d", st.RefWords)
	}
	if w := st.WER(); w != 2.0/6.0 {
		t.Errorf("WER = %v", w)
	}
}

func TestAlignEmptyCases(t *testing.T) {
	var st WERStats
	st.Add(Align(nil, strings.Fields("a b")))
	if st.Ins != 2 {
		t.Errorf("all-insertion case: %+v", st)
	}
	st = WERStats{}
	st.Add(Align(strings.Fields("a b"), nil))
	if st.Del != 2 || st.WER() != 1 {
		t.Errorf("all-deletion case: %+v", st)
	}
	if (&WERStats{}).WER() != 0 {
		t.Error("empty WER should be 0")
	}
}

func TestAlignDistanceMatchesLevenshteinProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ref := make([]string, 0, len(a)%8)
		hyp := make([]string, 0, len(b)%8)
		for i := 0; i < len(a)%8; i++ {
			ref = append(ref, string('a'+rune(a[i]%4)))
		}
		for i := 0; i < len(b)%8; i++ {
			hyp = append(hyp, string('a'+rune(b[i]%4)))
		}
		var st WERStats
		st.Add(Align(ref, hyp))
		// The alignment is an edit script, so its cost must be minimal:
		// compare with a direct distance on the joined strings (each word
		// is one letter here, so string distance equals word distance).
		return st.Sub+st.Del+st.Ins == wordLev(ref, hyp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func wordLev(a, b []string) int {
	la, lb := len(a), len(b)
	dp := make([][]int, la+1)
	for i := range dp {
		dp[i] = make([]int, lb+1)
		dp[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		dp[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			c := 1
			if a[i-1] == b[j-1] {
				c = 0
			}
			m := dp[i-1][j-1] + c
			if v := dp[i-1][j] + 1; v < m {
				m = v
			}
			if v := dp[i][j-1] + 1; v < m {
				m = v
			}
			dp[i][j] = m
		}
	}
	return dp[la][lb]
}

// --- Decoder tests ---

// testSetup builds a small but confusable lexicon and bigram LM.
func testSetup(t *testing.T) (*Lexicon, lm.Model) {
	t.Helper()
	lex := NewLexicon()
	generic := []string{
		"i", "want", "to", "book", "a", "car", "full", "size", "rate",
		"for", "the", "please", "reservation", "my", "name", "is",
		"number", "phone", "good", "discount",
	}
	lex.AddAll(generic, ClassGeneric)
	names := []string{"smith", "smyth", "jones", "johnson", "jonson", "brown", "braun", "miller", "muller", "davis"}
	lex.AddAll(names, ClassName)
	digits := []string{"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "oh"}
	lex.AddAll(digits, ClassDigit)

	tr := lm.NewTrainer(2)
	corpus := [][]string{
		strings.Fields("i want to book a car"),
		strings.Fields("i want to book a full size car"),
		strings.Fields("my name is smith"),
		strings.Fields("my name is jones"),
		strings.Fields("my phone number is five five five one two three four"),
		strings.Fields("a good rate please"),
		strings.Fields("the rate for the car"),
		strings.Fields("book a reservation for smith"),
		strings.Fields("i want a discount please"),
	}
	// Give every lexicon word at least unigram mass.
	for _, w := range names {
		corpus = append(corpus, []string{"my", "name", "is", w})
	}
	for _, w := range digits {
		corpus = append(corpus, []string{"number", w})
	}
	tr.AddCorpus(corpus)
	model, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	return lex, model
}

func TestDecodeCleanSpeechPerfect(t *testing.T) {
	lex, model := testSetup(t)
	ch := NewChannel(ChannelConfig{SubProb: 0, DelProb: 0, InsProb: 0})
	rec := NewRecognizer(lex, model, ch, DefaultDecoderConfig())
	refs := [][]string{
		strings.Fields("i want to book a car"),
		strings.Fields("my name is smith"),
		strings.Fields("a good rate please"),
	}
	r := rng.New(99)
	for _, ref := range refs {
		hyp, err := rec.Transcribe(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(hyp, " ") != strings.Join(ref, " ") {
			t.Errorf("clean decode %q → %q", strings.Join(ref, " "), strings.Join(hyp, " "))
		}
	}
}

func TestDecodeEmptyObservation(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CleanChannel), DefaultDecoderConfig())
	if got := rec.TranscribePhones(nil); got != nil {
		t.Errorf("empty observation decoded to %v", got)
	}
}

func TestDecodeNoisyDegradesGracefully(t *testing.T) {
	lex, model := testSetup(t)
	ref := strings.Fields("i want to book a full size car")
	r := rng.New(2024)

	cleanRec := NewRecognizer(lex, model, NewChannel(CleanChannel), DefaultDecoderConfig())
	noisyRec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())

	cleanWER, noisyWER := &WERStats{}, &WERStats{}
	for i := 0; i < 30; i++ {
		ch, _ := cleanRec.Transcribe(r.Split(uint64(i)), ref)
		nh, _ := noisyRec.Transcribe(r.Split(uint64(1000+i)), ref)
		cleanWER.Add(Align(ref, ch))
		noisyWER.Add(Align(ref, nh))
	}
	if cleanWER.WER() > 0.15 {
		t.Errorf("clean-channel WER too high: %v", cleanWER.WER())
	}
	if noisyWER.WER() <= cleanWER.WER() {
		t.Errorf("noise should increase WER: clean %v noisy %v", cleanWER.WER(), noisyWER.WER())
	}
	if noisyWER.WER() > 0.95 {
		t.Errorf("noisy WER implausibly catastrophic: %v", noisyWER.WER())
	}
}

func TestNamesHarderThanGeneric(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())
	scorer := NewClassWER(lex)
	r := rng.New(555)
	names := lex.WordsOfClass(ClassName)
	for i := 0; i < 60; i++ {
		ref := []string{"my", "name", "is", names[i%len(names)]}
		hyp, err := rec.Transcribe(r.Split(uint64(i)), ref)
		if err != nil {
			t.Fatal(err)
		}
		scorer.Add(ref, hyp)
	}
	nameWER := scorer.ForClass(ClassName)
	genWER := scorer.ForClass(ClassGeneric)
	if nameWER <= genWER {
		t.Errorf("names WER %v should exceed generic %v (confusable lexicon)", nameWER, genWER)
	}
}

func TestConstrainedSecondPassImprovesNames(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())
	r := rng.New(4242)
	names := lex.WordsOfClass(ClassName)

	var refs, firstHyps, secondHyps [][]string
	for i := 0; i < 60; i++ {
		trueName := names[i%len(names)]
		ref := []string{"my", "name", "is", trueName}
		phones, err := lex.Phones(ref)
		if err != nil {
			t.Fatal(err)
		}
		obs := rec.Channel.Corrupt(r.Split(uint64(i)), phones)
		first := rec.TranscribePhones(obs)
		// Oracle-ish top-N from "the database": the true name plus two
		// distractors — exactly what linking yields in the paper.
		allowed := map[string]bool{
			trueName:                true,
			names[(i+1)%len(names)]: true,
			names[(i+2)%len(names)]: true,
		}
		second := rec.WithNameConstraint(allowed, 1.0).TranscribePhones(obs)
		refs = append(refs, ref)
		firstHyps = append(firstHyps, first)
		secondHyps = append(secondHyps, second)
	}
	firstAcc := WordAccuracy(lex, refs, firstHyps, ClassName)
	secondAcc := WordAccuracy(lex, refs, secondHyps, ClassName)
	if secondAcc <= firstAcc {
		t.Errorf("second pass should improve name accuracy: %v → %v", firstAcc, secondAcc)
	}
}

func TestConstraintBlocksDisallowedNames(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(ChannelConfig{}), DefaultDecoderConfig())
	constrained := rec.WithNameConstraint(map[string]bool{"jones": true}, 0)
	phones, err := lex.Phones([]string{"my", "name", "is", "smith"})
	if err != nil {
		t.Fatal(err)
	}
	hyp := constrained.TranscribePhones(phones)
	for _, w := range hyp {
		if w == "smith" || w == "smyth" {
			t.Errorf("disallowed name emitted in %v", hyp)
		}
	}
}

func TestClassWERInsertionAttribution(t *testing.T) {
	lex, _ := testSetup(t)
	scorer := NewClassWER(lex)
	// Insertion right after a name should be attributed to the name class.
	scorer.Add([]string{"smith"}, []string{"smith", "car"})
	if scorer.Stats(ClassName).Ins != 1 {
		t.Errorf("insertion not attributed to preceding class: %+v", scorer.Stats(ClassName))
	}
	// Insertion at utterance start goes to generic.
	scorer2 := NewClassWER(lex)
	scorer2.Add([]string{"smith"}, []string{"car", "smith"})
	if scorer2.Stats(ClassGeneric).Ins != 1 {
		t.Errorf("leading insertion should be generic: %+v", scorer2.Stats(ClassGeneric))
	}
}

func TestWordAccuracyEdgeCases(t *testing.T) {
	lex, _ := testSetup(t)
	if WordAccuracy(lex, nil, nil, ClassName) != 0 {
		t.Error("no data accuracy should be 0")
	}
	refs := [][]string{{"smith"}}
	if got := WordAccuracy(lex, refs, [][]string{{"smith"}}, ClassName); got != 1 {
		t.Errorf("perfect accuracy = %v", got)
	}
	if got := WordAccuracy(lex, refs, [][]string{nil}, ClassName); got != 0 {
		t.Errorf("all-deleted accuracy = %v", got)
	}
}

func TestDecodeNBest(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())
	ref := strings.Fields("my name is smith")
	phones, err := lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	obs := rec.Channel.Corrupt(rng.New(21), phones)
	nbest := rec.Decoder().DecodeNBest(obs, 5)
	if len(nbest) == 0 {
		t.Fatal("empty n-best")
	}
	// Scores must be non-increasing, entries distinct.
	seen := map[string]bool{}
	for i, h := range nbest {
		key := strings.Join(h.Words, " ")
		if seen[key] {
			t.Errorf("duplicate hypothesis %q", key)
		}
		seen[key] = true
		if i > 0 && h.Score > nbest[i-1].Score {
			t.Errorf("n-best not sorted: %v after %v", h.Score, nbest[i-1].Score)
		}
	}
	// The 1-best must agree with Decode.
	if strings.Join(nbest[0].Words, " ") != strings.Join(rec.TranscribePhones(obs), " ") {
		t.Error("1-best disagrees with Decode")
	}
}

func TestDecodeNBestEdgeCases(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CleanChannel), DefaultDecoderConfig())
	if got := rec.Decoder().DecodeNBest(nil, 5); got != nil {
		t.Errorf("empty obs n-best: %v", got)
	}
	phones, _ := lex.Phones([]string{"car"})
	if got := rec.Decoder().DecodeNBest(phones, 0); got != nil {
		t.Errorf("n=0 n-best: %v", got)
	}
}

func TestNBestContainsTruthMoreOftenThanOneBest(t *testing.T) {
	lex, model := testSetup(t)
	rec := NewRecognizer(lex, model, NewChannel(CallCenterChannel), DefaultDecoderConfig())
	ref := strings.Fields("my name is smith")
	phones, err := lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(33)
	oneBest, inNBest := 0, 0
	const trials = 25
	for i := 0; i < trials; i++ {
		obs := rec.Channel.Corrupt(r.Split(uint64(i)), phones)
		nbest := rec.Decoder().DecodeNBest(obs, 8)
		want := strings.Join(ref, " ")
		for rank, h := range nbest {
			if strings.Join(h.Words, " ") == want {
				inNBest++
				if rank == 0 {
					oneBest++
				}
				break
			}
		}
	}
	if inNBest < oneBest {
		t.Fatalf("impossible: truth in n-best %d < 1-best %d", inNBest, oneBest)
	}
	if inNBest == 0 {
		t.Error("truth never in 8-best across 25 trials")
	}
}

func TestTrigramDecoderBeatsUnigram(t *testing.T) {
	lex, _ := testSetup(t)
	build := func(order int) lm.Model {
		tr := lm.NewTrainer(order)
		corpus := [][]string{
			strings.Fields("i want to book a car"),
			strings.Fields("i want to book a full size car"),
			strings.Fields("my name is smith"),
			strings.Fields("a good rate please"),
			strings.Fields("the rate for the car"),
		}
		tr.AddCorpus(corpus)
		tr.AddCorpus(corpus)
		m, err := tr.Build()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := strings.Fields("i want to book a full size car")
	phones, err := lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(63)
	ch := NewChannel(TelephoneChannel)
	uniWER, triWER := &WERStats{}, &WERStats{}
	uni := NewRecognizer(lex, build(1), ch, DefaultDecoderConfig())
	tri := NewRecognizer(lex, build(3), ch, DefaultDecoderConfig())
	for i := 0; i < 20; i++ {
		obs := ch.Corrupt(r.Split(uint64(i)), phones)
		uniWER.Add(Align(ref, uni.TranscribePhones(obs)))
		triWER.Add(Align(ref, tri.TranscribePhones(obs)))
	}
	if triWER.WER() > uniWER.WER() {
		t.Errorf("trigram WER %v should not exceed unigram %v", triWER.WER(), uniWER.WER())
	}
}

func TestTrigramContextUsed(t *testing.T) {
	lex, _ := testSetup(t)
	tr := lm.NewTrainer(3)
	tr.AddCorpus([][]string{
		strings.Fields("i want to book a car"),
		strings.Fields("book a reservation for smith"),
	})
	model, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecognizer(lex, model, NewChannel(ChannelConfig{}), DefaultDecoderConfig())
	ref := strings.Fields("i want to book a car")
	hyp, err := rec.Transcribe(rng.New(1), ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(hyp, " ") != strings.Join(ref, " ") {
		t.Errorf("trigram clean decode: %v", hyp)
	}
}
