package asr

import (
	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
)

// AlignOp is one cell of a word-level alignment.
type AlignOp uint8

// Alignment operations.
const (
	OpMatch AlignOp = iota
	OpSub
	OpDel // reference word missing from hypothesis
	OpIns // hypothesis word not in reference
)

// AlignedPair is one step of the reference/hypothesis alignment. Ref is
// empty for insertions; Hyp is empty for deletions.
type AlignedPair struct {
	Op  AlignOp
	Ref string
	Hyp string
}

// Align computes a minimum-edit-distance word alignment between the
// reference and hypothesis transcripts (the alignment Equation 1 of the
// paper is defined over).
func Align(ref, hyp []string) []AlignedPair {
	lr, lh := len(ref), len(hyp)
	// dp[i][j] = edit distance between ref[:i] and hyp[:j].
	dp := make([][]int, lr+1)
	for i := range dp {
		dp[i] = make([]int, lh+1)
		dp[i][0] = i
	}
	for j := 0; j <= lh; j++ {
		dp[0][j] = j
	}
	for i := 1; i <= lr; i++ {
		for j := 1; j <= lh; j++ {
			cost := 1
			if ref[i-1] == hyp[j-1] {
				cost = 0
			}
			m := dp[i-1][j-1] + cost
			if v := dp[i-1][j] + 1; v < m {
				m = v
			}
			if v := dp[i][j-1] + 1; v < m {
				m = v
			}
			dp[i][j] = m
		}
	}
	// Backtrace, preferring diagonal moves so matches align naturally.
	var rev []AlignedPair
	i, j := lr, lh
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && ref[i-1] == hyp[j-1] && dp[i][j] == dp[i-1][j-1]:
			rev = append(rev, AlignedPair{OpMatch, ref[i-1], hyp[j-1]})
			i--
			j--
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1:
			rev = append(rev, AlignedPair{OpSub, ref[i-1], hyp[j-1]})
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			rev = append(rev, AlignedPair{OpDel, ref[i-1], ""})
			i--
		default:
			rev = append(rev, AlignedPair{OpIns, "", hyp[j-1]})
			j--
		}
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// WERStats accumulates word-error-rate counts: Equation 1 of the paper,
// WER = (S + D + I) / N.
type WERStats struct {
	Sub, Del, Ins int
	RefWords      int
}

// Add accumulates the alignment of one utterance.
func (w *WERStats) Add(pairs []AlignedPair) {
	for _, p := range pairs {
		switch p.Op {
		case OpSub:
			w.Sub++
			w.RefWords++
		case OpDel:
			w.Del++
			w.RefWords++
		case OpIns:
			w.Ins++
		case OpMatch:
			w.RefWords++
		}
	}
}

// WER returns (S+D+I)/N, or 0 when no reference words were seen.
func (w *WERStats) WER() float64 {
	if w.RefWords == 0 {
		return 0
	}
	return float64(w.Sub+w.Del+w.Ins) / float64(w.RefWords)
}

// ClassWER scores error rates per word class, attributing substitutions
// and deletions to the class of the reference word and insertions to the
// class of the preceding reference word (generic at utterance start).
// This is how Table I separates "Entire Speech", "Names" and "Numbers".
type ClassWER struct {
	lex   *Lexicon
	stats map[WordClass]*WERStats
	all   WERStats
}

// NewClassWER returns a scorer that classifies words through lex.
func NewClassWER(lex *Lexicon) *ClassWER {
	return &ClassWER{lex: lex, stats: make(map[WordClass]*WERStats)}
}

func (c *ClassWER) classStats(cl WordClass) *WERStats {
	s, ok := c.stats[cl]
	if !ok {
		s = &WERStats{}
		c.stats[cl] = s
	}
	return s
}

// Add scores one utterance pair.
func (c *ClassWER) Add(ref, hyp []string) {
	pairs := Align(ref, hyp)
	c.all.Add(pairs)
	lastClass := ClassGeneric
	for _, p := range pairs {
		switch p.Op {
		case OpMatch:
			cl := c.lex.ClassOfWord(p.Ref)
			st := c.classStats(cl)
			st.RefWords++
			lastClass = cl
		case OpSub:
			cl := c.lex.ClassOfWord(p.Ref)
			st := c.classStats(cl)
			st.Sub++
			st.RefWords++
			lastClass = cl
		case OpDel:
			cl := c.lex.ClassOfWord(p.Ref)
			st := c.classStats(cl)
			st.Del++
			st.RefWords++
			lastClass = cl
		case OpIns:
			c.classStats(lastClass).Ins++
		}
	}
}

// Overall returns the aggregate WER across all classes.
func (c *ClassWER) Overall() float64 { return c.all.WER() }

// ForClass returns the WER restricted to one word class (0 if the class
// never appeared in a reference).
func (c *ClassWER) ForClass(cl WordClass) float64 {
	if s, ok := c.stats[cl]; ok {
		return s.WER()
	}
	return 0
}

// Stats returns the raw counters for a class.
func (c *ClassWER) Stats(cl WordClass) WERStats {
	if s, ok := c.stats[cl]; ok {
		return *s
	}
	return WERStats{}
}

// Transcribe runs the full pipeline on one reference utterance: phones →
// channel → decode. Out-of-lexicon reference words make it fail.
func (r *Recognizer) Transcribe(rnd *rng.RNG, ref []string) ([]string, error) {
	phones, err := r.Lex.Phones(ref)
	if err != nil {
		return nil, err
	}
	observed := r.Channel.Corrupt(rnd, phones)
	return r.decoder.Decode(observed), nil
}

// TranscribePhones decodes an already-corrupted phone sequence.
func (r *Recognizer) TranscribePhones(observed []phonetics.Phone) []string {
	return r.decoder.Decode(observed)
}

// WordAccuracy returns the fraction of reference words of class cl that
// were exactly recovered (by position-independent alignment), across the
// corpus of (ref, hyp) pairs. The second-pass experiment reports name
// accuracy improvement in these terms ("10% absolute").
func WordAccuracy(lex *Lexicon, refs, hyps [][]string, cl WordClass) float64 {
	total, correct := 0, 0
	for i := range refs {
		var hyp []string
		if i < len(hyps) {
			hyp = hyps[i]
		}
		for _, p := range Align(refs[i], hyp) {
			switch p.Op {
			case OpMatch:
				if lex.ClassOfWord(p.Ref) == cl {
					total++
					correct++
				}
			case OpSub, OpDel:
				if lex.ClassOfWord(p.Ref) == cl {
					total++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
