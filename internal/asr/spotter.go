package asr

import (
	"math"
	"sort"

	"bivoc/internal/phonetics"
)

// Keyword spotting (§II of the paper): commercial tools "use word
// spotting technologies to index audio conversations and provide a
// framework to write rules to discover associations". The spotter finds
// likely occurrences of a keyword's pronunciation directly in the
// observed phone stream without full decoding — useful both as a cheap
// indexing pass and as the baseline BIVoC improves on (word spotting
// tracks contact-centre metrics; BIVoC links to business outcomes).
//
// The detector slides the keyword pronunciation across the observation
// with a banded edit distance and converts the best-normalized distance
// into a confidence in [0, 1]; hits above the threshold are returned
// with their spans, non-overlapping, best-first.

// Spot is one keyword detection.
type Spot struct {
	Keyword    string
	Span       Span
	Confidence float64
}

// Spotter detects keywords in phone streams.
type Spotter struct {
	lex *Lexicon
	// Threshold is the minimum confidence for a hit (default 0.6).
	Threshold float64
}

// NewSpotter returns a spotter over the lexicon's pronunciations.
func NewSpotter(lex *Lexicon) *Spotter {
	return &Spotter{lex: lex, Threshold: 0.6}
}

// Find returns the non-overlapping occurrences of keyword in observed,
// best-confidence first. Unknown keywords yield nothing.
func (s *Spotter) Find(keyword string, observed []phonetics.Phone) []Spot {
	pron, ok := s.lex.Pronunciation(keyword)
	if !ok || len(pron) == 0 || len(observed) == 0 {
		return nil
	}
	// Collect candidate (end, distance, start) triples from a DP where
	// the keyword must be fully matched but may start anywhere: the
	// classic "semi-global" alignment — free leading/trailing gaps in
	// the observation.
	lk := len(pron)
	lo := len(observed)
	const indel = 0.7
	// dp[i][j]: best cost of aligning pron[:i] against a suffix of
	// observed[:j] that starts anywhere. start[i][j] tracks the start.
	dp := make([][]float64, lk+1)
	start := make([][]int, lk+1)
	for i := range dp {
		dp[i] = make([]float64, lo+1)
		start[i] = make([]int, lo+1)
	}
	for j := 0; j <= lo; j++ {
		dp[0][j] = 0 // free prefix: keyword can start at any j
		start[0][j] = j
	}
	for i := 1; i <= lk; i++ {
		dp[i][0] = float64(i) * indel
		start[i][0] = 0
		for j := 1; j <= lo; j++ {
			sub := dp[i-1][j-1]
			if pron[i-1] != observed[j-1] {
				if phonetics.ClassOf(pron[i-1]) == phonetics.ClassOf(observed[j-1]) {
					sub += 0.5
				} else {
					sub += 1.0
				}
			}
			del := dp[i-1][j] + indel // keyword phone unobserved
			ins := dp[i][j-1] + indel // spurious observed phone inside keyword
			best, from := sub, start[i-1][j-1]
			if del < best {
				best, from = del, start[i-1][j]
			}
			if ins < best {
				best, from = ins, start[i][j-1]
			}
			dp[i][j] = best
			start[i][j] = from
		}
	}
	// Convert ends into hits.
	var hits []Spot
	for j := 1; j <= lo; j++ {
		dist := dp[lk][j]
		conf := 1 - dist/float64(lk)
		if conf < s.Threshold {
			continue
		}
		hits = append(hits, Spot{
			Keyword:    keyword,
			Span:       Span{Start: start[lk][j], End: j},
			Confidence: conf,
		})
	}
	// Non-maximum suppression: keep best hit per overlapping cluster.
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Confidence != hits[b].Confidence {
			return hits[a].Confidence > hits[b].Confidence
		}
		return hits[a].Span.Start < hits[b].Span.Start
	})
	var kept []Spot
	for _, h := range hits {
		overlaps := false
		for _, k := range kept {
			if h.Span.Start < k.Span.End && k.Span.Start < h.Span.End {
				overlaps = true
				break
			}
		}
		if !overlaps {
			kept = append(kept, h)
		}
	}
	return kept
}

// FindAll spots every keyword, returning hits grouped by keyword.
func (s *Spotter) FindAll(keywords []string, observed []phonetics.Phone) map[string][]Spot {
	out := make(map[string][]Spot)
	for _, kw := range keywords {
		if hits := s.Find(kw, observed); len(hits) > 0 {
			out[kw] = hits
		}
	}
	return out
}

// SpotWords is a convenience for spotting in utterances generated from
// a reference: it renders words to phones through the lexicon, corrupts
// nothing, and spots. Returns nil on out-of-lexicon reference words.
func (s *Spotter) SpotWords(keyword string, reference []string) []Spot {
	phones, err := s.lex.Phones(reference)
	if err != nil {
		return nil
	}
	return s.Find(keyword, phones)
}

// LogOddsScore converts a confidence to the LVCSR-style log-likelihood
// ratio the keyword-spotting literature reports (Weintraub 1995): the
// log odds of the keyword match against a uniform-phone background.
func LogOddsScore(confidence float64) float64 {
	c := confidence
	if c <= 0 {
		c = 1e-9
	}
	if c >= 1 {
		c = 1 - 1e-9
	}
	return math.Log(c / (1 - c))
}
