package bivoc_test

import (
	"fmt"
	"testing"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

// Segment-architecture benchmarks: what a snapshot swap costs under the
// old monolithic rebuild (reseal the whole corpus) versus the segmented
// publish (seal only the pending batch), across a 10x corpus growth at
// a fixed batch size — the O(corpus) vs O(new docs) claim — plus the
// query-side price of fanning in across segments. `make bench-seg`
// records the results in BENCH_seg.json.

// segBenchDoc builds the i-th synthetic document of the swap corpus:
// topic/place concepts, outcome/parity fields, a time bucket — the same
// dimensional shape as the serving-layer tests.
func segBenchDoc(i int) mining.Document {
	topics := []string{"billing", "coverage", "roadside", "upgrade", "refund"}
	parity := "even"
	if i%2 == 1 {
		parity = "odd"
	}
	concepts := []annotate.Concept{
		{Category: "topic", Canonical: topics[i%len(topics)]},
	}
	if i%5 == 0 {
		concepts = append(concepts, annotate.Concept{Category: "place", Canonical: "austin"})
	}
	return mining.Document{
		ID:       fmt.Sprintf("seg-%07d", i),
		Concepts: concepts,
		Fields:   map[string]string{"parity": parity, "outcome": []string{"reservation", "unbooked", "service"}[i%3]},
		Time:     i / 100,
	}
}

func segBenchDocs(n int) []mining.Document {
	docs := make([]mining.Document, n)
	for i := range docs {
		docs[i] = segBenchDoc(i)
	}
	return docs
}

// sealBatch is the segmented publish path: seal exactly these docs.
func sealBatch(docs []mining.Document) *mining.Index {
	si := mining.NewStreamIndex()
	si.AddBatch(docs)
	return si.Seal()
}

// BenchmarkSegSwap is the headline tentpole comparison: publish cost at
// a fixed 200-document ingest batch as the already-indexed corpus grows
// 10x (2k → 20k docs). monolithic-reseal is what the serving layer did
// before segments (rebuild corpus+batch); segmented-seal is what it
// does now (seal only the batch). The acceptance bar is the segmented
// numbers staying flat (±20%) across the growth while the monolithic
// ones scale with the corpus.
func BenchmarkSegSwap(b *testing.B) {
	const batchSize = 200
	for _, corpusSize := range []int{2000, 20000} {
		corpus := segBenchDocs(corpusSize)
		batch := segBenchDocs(corpusSize + batchSize)[corpusSize:]
		b.Run(fmt.Sprintf("monolithic-reseal/corpus-%d", corpusSize), func(b *testing.B) {
			all := append(append([]mining.Document(nil), corpus...), batch...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ix := sealBatch(all); ix.Len() != corpusSize+batchSize {
					b.Fatal("bad reseal")
				}
			}
		})
		b.Run(fmt.Sprintf("segmented-seal/corpus-%d", corpusSize), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ix := sealBatch(batch); ix.Len() != batchSize {
					b.Fatal("bad batch seal")
				}
			}
		})
	}
}

// BenchmarkSegQuery prices the read-side fan-in: the mining hot path
// (four-dim Count, a 3x3 association table, a trend) against one
// monolithic index versus a SegmentSet over the same corpus split into
// 8 segments — the bound the background compactor maintains.
func BenchmarkSegQuery(b *testing.B) {
	const corpusSize, nsegs = 20000, 8
	docs := segBenchDocs(corpusSize)
	mono := sealBatch(docs)
	parts := make([][]mining.Document, nsegs)
	for i, d := range docs {
		parts[i%nsegs] = append(parts[i%nsegs], d)
	}
	segs := make([]*mining.Index, nsegs)
	for i, p := range parts {
		segs[i] = sealBatch(p)
	}
	set := mining.NewSegmentSet(segs...)

	dims := []mining.Dim{
		mining.ConceptDim("topic", "billing"),
		mining.FieldDim("outcome", "reservation"),
		mining.CategoryDim("place"),
		mining.AndDim(mining.ConceptDim("topic", "billing"), mining.FieldDim("outcome", "reservation")),
	}
	rows := []mining.Dim{
		mining.ConceptDim("topic", "billing"),
		mining.ConceptDim("topic", "coverage"),
		mining.ConceptDim("topic", "roadside"),
	}
	cols := []mining.Dim{
		mining.FieldDim("outcome", "reservation"),
		mining.FieldDim("outcome", "unbooked"),
		mining.FieldDim("outcome", "service"),
	}
	for _, src := range []struct {
		name string
		q    mining.Querier
	}{{"monolithic", mono}, {"segments-8", set}} {
		b.Run(src.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range dims {
					src.q.Count(d)
				}
				src.q.AssociateN(rows, cols, 0.95, 1)
				src.q.Trend(dims[0])
			}
		})
	}
}
