package bivoc_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bivoc"
)

// End-to-end equivalence for the federation subsystem: a bivocfed
// coordinator over N sharded bivocd daemons — each running the real
// call-analysis pipeline over only its ShardOf slice of the corpus —
// must answer every /v1 endpoint byte-identically to one daemon that
// ingested everything. This is the acceptance gate that lets the fleet
// scale out without any observable difference at the API: merges happen
// on integer marginals, and the single float pipeline (Wilson
// intervals, relative frequencies, trend slopes) runs once on the
// merged counts.

// fedFleet boots n sharded daemons plus a coordinator over them, waits
// until every shard has sealed, and returns the coordinator address
// with a stop func.
func fedFleet(t *testing.T, n int) (addr string, stop func()) {
	t.Helper()
	shards := make([]string, n)
	var stops []func()
	stopAll := func() {
		for _, s := range stops {
			s()
		}
	}
	for i := 0; i < n; i++ {
		cfg := storeEquivConfig("")
		cfg.ShardIndex = i
		cfg.ShardCount = n
		s, stopShard := runSealedServer(t, cfg)
		stops = append(stops, stopShard)
		shards[i] = "http://" + s.Addr()
	}
	c, err := bivoc.NewFedCoordinator(bivoc.FedConfig{Addr: "127.0.0.1:0", Shards: shards})
	if err != nil {
		stopAll()
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		stopAll()
		t.Fatal(err)
	}
	stops = append([]func(){func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}}, stops...)
	return c.Addr(), stopAll
}

// TestFedEndpointsMatchSingleDaemon is the scale-out contract over the
// real pipeline: shard counts {1, 2, 4, 8}, fast and naive analytics,
// every /v1 endpoint byte-identical to the single-daemon oracle.
// (/healthz is excluded: the federated body legitimately reports
// per-shard health instead of the single-daemon shape.)
func TestFedEndpointsMatchSingleDaemon(t *testing.T) {
	restore := setMiningMode(false, 0)
	defer restore()
	endpoints := storeEquivEndpoints()
	delete(endpoints, "healthz")

	// Oracle: one daemon over the whole corpus.
	mono, stopMono := runSealedServer(t, storeEquivConfig(""))
	want := make(map[string]string, len(endpoints))
	for name, path := range endpoints {
		want[name] = fetchBody(t, mono.Addr(), path)
	}
	stopMono()

	for _, naive := range []bool{false, true} {
		for _, n := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("naive=%v/shards-%d", naive, n), func(t *testing.T) {
				restore := setMiningMode(naive, 0)
				defer restore()
				addr, stop := fedFleet(t, n)
				defer stop()
				for name, path := range endpoints {
					if got := fetchBody(t, addr, path); got != want[name] {
						t.Errorf("%s diverges from single daemon:\n got %s\nwant %s", name, got, want[name])
					}
				}
				// The fleet really is partitioned: the aggregated /statsz
				// docs must cover the whole corpus across n shards.
				var stats struct {
					Docs   int               `json:"docs"`
					Shards []json.RawMessage `json:"shards"`
				}
				if err := json.Unmarshal([]byte(fetchBody(t, addr, "/statsz")), &stats); err != nil {
					t.Fatal(err)
				}
				if stats.Docs != 180 || len(stats.Shards) != n {
					t.Errorf("statsz docs=%d shards=%d, want 180 docs across %d shards", stats.Docs, len(stats.Shards), n)
				}
			})
		}
	}
}
