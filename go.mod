module bivoc

go 1.22
