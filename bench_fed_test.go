package bivoc_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"bivoc/internal/fed"
	"bivoc/internal/mining"
	"bivoc/internal/server"
)

// Federation benchmarks: the coordinator's scatter-gather price across
// a shard sweep. One iteration is the mixed query bundle the segment
// benchmarks use (four-dim count, 3x3 association table, trend), issued
// over HTTP through a bivocfed coordinator fronting k shard servers
// that partition the same 20k-document corpus — so the k=1 row is the
// federation tax over a single daemon, and the sweep shows how the
// fan-out scales. `make bench-fed` records the results in
// BENCH_fed.json.

// fedBenchFleet boots k shard servers over the 20k-document segment
// corpus partitioned by ShardOf, plus a coordinator configured from
// coord over them, and returns the coordinator's base URL with a stop
// func. Shard caches are off so each iteration pays the real per-shard
// query work.
func fedBenchFleet(b *testing.B, docs []mining.Document, k int, coord fed.Config) (base string, stop func()) {
	b.Helper()
	src := func(ctx context.Context, already func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	var stops []func()
	stopAll := func() {
		for _, s := range stops {
			s()
		}
	}
	shards := make([]string, k)
	for i := 0; i < k; i++ {
		s, err := server.New(server.Config{
			Addr:      "127.0.0.1:0",
			Source:    fed.PartitionSource(src, i, k),
			CacheSize: -1,
		})
		if err == nil {
			err = s.Start()
		}
		if err != nil {
			stopAll()
			b.Fatal(err)
		}
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		select {
		case <-s.IngestDone():
		case <-time.After(60 * time.Second):
			stopAll()
			b.Fatal("shard ingest did not seal")
		}
		shards[i] = "http://" + s.Addr()
	}
	coord.Addr = "127.0.0.1:0"
	coord.Shards = shards
	c, err := fed.NewCoordinator(coord)
	if err == nil {
		err = c.Start()
	}
	if err != nil {
		stopAll()
		b.Fatal(err)
	}
	stops = append([]func(){func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	}}, stops...)
	return "http://" + c.Addr(), stopAll
}

// fedBenchQueries is the per-iteration bundle, mirroring
// BenchmarkSegQuery's mix at the HTTP layer.
func fedBenchQueries() []string {
	return []string{
		"/v1/count?" + url.Values{"dim": {
			"billing[topic]", "austin[place]", "outcome=reservation", "parity=even ∧ outcome=service",
		}}.Encode(),
		"/v1/associate?" + url.Values{
			"row": {"billing[topic]", "coverage[topic]", "roadside[topic]"},
			"col": {"outcome=reservation", "outcome=unbooked", "outcome=service"},
		}.Encode(),
		"/v1/trend?" + url.Values{"dim": {"billing[topic]"}}.Encode(),
	}
}

// BenchmarkFedQuery sweeps shard counts {1, 2, 4, 8} over a fixed 20k
// corpus. The responses are byte-identical at every k (pinned by the
// equivalence suites); the benchmark prices what that costs: per-shard
// HTTP round-trips, marginal decode, and the single merged finalize.
// The coordinator's own result cache is off so every iteration pays the
// full scatter — BenchmarkFedQueryCached prices the hit path.
func BenchmarkFedQuery(b *testing.B) {
	docs := segBenchDocs(20000)
	queries := fedBenchQueries()
	client := &http.Client{}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", k), func(b *testing.B) {
			base, stop := fedBenchFleet(b, docs, k, fed.Config{CacheSize: -1})
			defer stop()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					resp, err := client.Get(base + q)
					if err != nil {
						b.Fatal(err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("GET %s: status %d: %s", q, resp.StatusCode, body)
					}
				}
			}
		})
	}
}

// BenchmarkFedQueryCached prices the coordinator's generation-keyed
// result cache: the same bundle over a sealed fleet, warmed once so
// every timed iteration is a cache hit. The gap to BenchmarkFedQuery at
// the same k is the scatter each hit skips; hits are flat in k because
// no shard is consulted at all. CacheTTL is stretched past the run so
// the trust window never lapses mid-measurement.
func BenchmarkFedQueryCached(b *testing.B) {
	docs := segBenchDocs(20000)
	queries := fedBenchQueries()
	client := &http.Client{}
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", k), func(b *testing.B) {
			base, stop := fedBenchFleet(b, docs, k, fed.Config{CacheTTL: time.Hour})
			defer stop()
			issue := func() {
				for _, q := range queries {
					resp, err := client.Get(base + q)
					if err != nil {
						b.Fatal(err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("GET %s: status %d: %s", q, resp.StatusCode, body)
					}
				}
			}
			issue() // warm: scatter once, populate the cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				issue()
			}
		})
	}
}
