// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benchmarks for the design choices called out
// in DESIGN.md. Each experiment benchmark reports the measured quantity
// as a custom metric, and the b.N loop times the full regeneration so
// throughput regressions in any pipeline stage are visible.
//
// Benchmarks run on deliberately SMALL corpora to keep the suite fast,
// so their reported metrics carry small-sample noise; the canonical
// paper-vs-measured numbers in EXPERIMENTS.md come from
// `cmd/experiments`, which uses the full default corpora.
//
// Run with:
//
//	go test -bench=. -benchmem
package bivoc_test

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bivoc"
	"bivoc/internal/rng"
)

// benchCalls keeps ASR-heavy benchmarks laptop-fast; the cmd/experiments
// harness uses larger corpora for the recorded numbers.
const benchCalls = 30

// --- Table I: ASR performance (WER per entity class) ---

func BenchmarkTableI_ASRPerformance(b *testing.B) {
	cfg := bivoc.DefaultASRExperimentConfig()
	cfg.NumCalls = benchCalls
	var last *bivoc.ASRResult
	for i := 0; i < b.N; i++ {
		res, err := bivoc.RunASRExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Overall, "WER%")
	b.ReportMetric(100*last.Names, "nameWER%")
	b.ReportMetric(100*last.Numbers, "numWER%")
}

// --- §IV.A.1: constrained second-pass name recognition ---

func BenchmarkSecondPassNameRecognition(b *testing.B) {
	cfg := bivoc.DefaultSecondPassConfig()
	cfg.NumCalls = benchCalls
	var last *bivoc.SecondPassResult
	for i := 0; i < b.N; i++ {
		res, err := bivoc.RunSecondPassExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Improvement, "absImprove%")
}

// referenceAnalysis builds the analysis-layer pipeline state shared by
// the association-table benchmarks.
func referenceAnalysis(b *testing.B) *bivoc.CallAnalysis {
	b.Helper()
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.CallsPerDay = 400
	cfg.World.Days = 5
	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ca
}

// --- Table II: location × vehicle-type association ---

func BenchmarkTableII_LocationVehicleAssociation(b *testing.B) {
	ca := referenceAnalysis(b)
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		t2 := ca.LocationVehicleTable()
		cells = len(t2.Rows) * len(t2.Cols)
	}
	b.ReportMetric(float64(cells), "cells")
}

// --- Table III: customer intention × outcome ---

func BenchmarkTableIII_IntentVsOutcome(b *testing.B) {
	ca := referenceAnalysis(b)
	b.ResetTimer()
	var strong, weak float64
	for i := 0; i < b.N; i++ {
		t3 := ca.IntentOutcomeTable()
		strong = t3.Cells[0][0].RowShare
		weak = t3.Cells[1][0].RowShare
	}
	b.ReportMetric(100*strong, "strongConv%") // paper: 63
	b.ReportMetric(100*weak, "weakConv%")     // paper: 32
}

// --- Table IV: agent utterance × outcome ---

func BenchmarkTableIV_AgentUtteranceVsOutcome(b *testing.B) {
	ca := referenceAnalysis(b)
	b.ResetTimer()
	var value, disc float64
	for i := 0; i < b.N; i++ {
		t4 := ca.AgentUtteranceTable()
		value = t4.Cells[0][0].RowShare
		disc = t4.Cells[1][0].RowShare
	}
	b.ReportMetric(100*value, "valueConv%") // paper: 59
	b.ReportMetric(100*disc, "discConv%")   // paper: 72
}

// --- §V.C: agent-training uplift ---

func BenchmarkAgentTrainingUplift(b *testing.B) {
	cfg := bivoc.DefaultTrainingConfig()
	cfg.World.CallsPerDay = 250
	cfg.BeforeDays = 8
	cfg.AfterDays = 8
	var last *bivoc.TrainingResult
	for i := 0; i < b.N; i++ {
		res, err := bivoc.RunTrainingExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Uplift, "uplift%") // paper: +3
	b.ReportMetric(last.TTest.POneSided, "pValue")
}

// --- §VI: churn prediction ---

func BenchmarkChurnPrediction(b *testing.B) {
	cfg := bivoc.DefaultChurnExperimentConfig()
	cfg.World.NumCustomers = 600
	cfg.World.Emails = 1200
	cfg.World.SMS = 0
	var last *bivoc.ChurnExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := bivoc.RunChurnExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.ChurnerRecall, "recall%")      // paper: 53.6
	b.ReportMetric(100*last.UnlinkableRate, "unlinkable%") // paper: 18
}

// --- Figure 1: noisy VoC generation throughput ---

func BenchmarkFig1_VoCGeneration(b *testing.B) {
	cfg := bivoc.DefaultTelecomConfig()
	cfg.NumCustomers = 200
	cfg.Emails = 500
	cfg.SMS = 500
	for i := 0; i < b.N; i++ {
		if _, err := bivoc.NewTelecomWorld(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: association drill-down ---

func BenchmarkFig4_AssociationDrillDown(b *testing.B) {
	ca := referenceAnalysis(b)
	row := bivoc.ConceptDim("customer intention", "weak start")
	col := bivoc.FieldDim("outcome", "reservation")
	b.ResetTimer()
	var docs int
	for i := 0; i < b.N; i++ {
		docs = len(ca.Index.DrillDown(row, col))
	}
	b.ReportMetric(float64(docs), "docs")
}

// --- §IV.B: EM weight learning ---

func BenchmarkEMWeightLearning(b *testing.B) {
	world, engine, annotators := linkerFixture(b)
	docs := identityDocs(b, world, annotators, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh engine per iteration so EM always starts from uniform.
		e, err := bivoc.NewCustomerLinker(world.DB)
		if err != nil {
			b.Fatal(err)
		}
		e.LearnWeights(docs, 3)
	}
	_ = engine
}

// linkerFixture builds a world plus linker for the linking ablations.
func linkerFixture(b testing.TB) (*bivoc.CarRentalWorld, *bivoc.LinkerEngine, *bivoc.LinkerAnnotators) {
	b.Helper()
	cfg := bivoc.DefaultCarRentalConfig()
	cfg.NumCustomers = 800
	cfg.CallsPerDay = 1
	cfg.Days = 0
	world, err := bivoc.NewCarRentalWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := bivoc.NewCustomerLinker(world.DB)
	if err != nil {
		b.Fatal(err)
	}
	return world, engine, bivoc.NewCarRentalAnnotators()
}

// identityDocs synthesizes noisy identity documents for n customers.
func identityDocs(b testing.TB, world *bivoc.CarRentalWorld, annotators *bivoc.LinkerAnnotators, n int) [][]bivoc.LinkerToken {
	b.Helper()
	r := rng.New(7)
	var docs [][]bivoc.LinkerToken
	for i := 0; i < n && i < len(world.Customers); i++ {
		c := world.Customers[i]
		// A partially recognized identity: full name, 60% of calls carry
		// a truncated phone fragment.
		text := "name is " + c.Given + " " + c.Surname
		if r.Bool(0.6) {
			text += " phone number is " + c.Phone[:6]
		}
		docs = append(docs, annotators.Extract(text))
	}
	return docs
}

// --- Ablation: Fagin/TA merge vs naive full scan ---

func BenchmarkAblationFaginVsFullScan(b *testing.B) {
	world, engine, annotators := linkerFixture(b)
	docs := identityDocs(b, world, annotators, 100)
	b.Run("threshold-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				engine.Link(d, 3)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				engine.LinkFullScan(d, 3)
			}
		}
	})
}

// --- Ablation: combined vs per-entity linking accuracy ---

func BenchmarkAblationCombinedVsIndividualEntities(b *testing.B) {
	world, engine, annotators := linkerFixture(b)
	docs := identityDocs(b, world, annotators, 200)
	gold := make([]*bivoc.LinkerGoldLabel, len(docs))
	for i := range docs {
		row, _ := world.DB.MustTable("customers").ByKey(world.Customers[i].ID)
		gold[i] = &bivoc.LinkerGoldLabel{Table: "customers", Row: row}
	}
	var combined, individual float64
	for i := 0; i < b.N; i++ {
		correctC, correctI := 0, 0
		for d, doc := range docs {
			if m := engine.LinkTable(doc, "customers", 1); len(m) == 1 && m[0].Row == gold[d].Row {
				correctC++
			}
			if m, ok := engine.LinkIndividualBest(doc, "customers"); ok && m.Row == gold[d].Row {
				correctI++
			}
		}
		combined = float64(correctC) / float64(len(docs))
		individual = float64(correctI) / float64(len(docs))
	}
	b.ReportMetric(100*combined, "combinedAcc%")
	b.ReportMetric(100*individual, "individualAcc%")
}

// --- Ablation: EM-learned vs uniform attribute weights ---

func BenchmarkAblationEMVsUniformWeights(b *testing.B) {
	world, _, annotators := linkerFixture(b)
	docs := identityDocs(b, world, annotators, 200)
	gold := make([]*bivoc.LinkerGoldLabel, len(docs))
	for i := range docs {
		row, _ := world.DB.MustTable("customers").ByKey(world.Customers[i].ID)
		gold[i] = &bivoc.LinkerGoldLabel{Table: "customers", Row: row}
	}
	var uniformAcc, emAcc float64
	for i := 0; i < b.N; i++ {
		uniform, err := bivoc.NewCustomerLinker(world.DB)
		if err != nil {
			b.Fatal(err)
		}
		uniformAcc = uniform.Evaluate(docs, gold, 1).Recall()
		em, err := bivoc.NewCustomerLinker(world.DB)
		if err != nil {
			b.Fatal(err)
		}
		em.LearnWeights(docs, 3)
		emAcc = em.Evaluate(docs, gold, 1).Recall()
	}
	b.ReportMetric(100*uniformAcc, "uniformAcc%")
	b.ReportMetric(100*emAcc, "emAcc%")
}

// --- Ablation: interval vs point estimate for association ranking ---

func BenchmarkAblationIntervalVsPointEstimate(b *testing.B) {
	ca := referenceAnalysis(b)
	b.ResetTimer()
	var pointTop, lowerTop float64
	for i := 0; i < b.N; i++ {
		t2 := ca.LocationVehicleTable()
		// Rank once by point estimate, once by the conservative lower
		// bound; report how much the top point-estimate cell shrinks.
		var maxPoint, itsLower float64
		for _, row := range t2.Cells {
			for _, cell := range row {
				if cell.PointIndex > maxPoint {
					maxPoint = cell.PointIndex
					itsLower = cell.LowerIndex
				}
			}
		}
		pointTop, lowerTop = maxPoint, itsLower
	}
	b.ReportMetric(pointTop, "topPointIdx")
	b.ReportMetric(lowerTop, "itsLowerIdx")
}

// --- Ablation: top-N sweep for the constrained second pass ---

func BenchmarkAblationTopNSweep(b *testing.B) {
	for _, topN := range []int{2, 5, 10} {
		b.Run("topN="+itoa(topN), func(b *testing.B) {
			cfg := bivoc.DefaultSecondPassConfig()
			cfg.NumCalls = benchCalls
			cfg.TopN = topN
			var last *bivoc.SecondPassResult
			for i := 0; i < b.N; i++ {
				res, err := bivoc.RunSecondPassExperiment(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(100*last.Improvement, "absImprove%")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Ablation: beam width — the paper's speed/accuracy tradeoff ---
// §III: "ASR systems can be made faster through avoiding computationally
// costly steps ... However, reduction in speed always comes at the cost
// of increase in WER." Narrower beams are the decoder-side equivalent.

func BenchmarkAblationBeamWidthSweep(b *testing.B) {
	for _, width := range []int{32, 96, 192} {
		b.Run("beam="+itoa(width), func(b *testing.B) {
			cfg := bivoc.DefaultASRExperimentConfig()
			cfg.NumCalls = benchCalls
			cfg.Decoder.BeamWidth = width
			var last *bivoc.ASRResult
			for i := 0; i < b.N; i++ {
				res, err := bivoc.RunASRExperiment(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(100*last.Overall, "WER%")
		})
	}
}

// --- Word spotting (§II baseline) throughput and recall ---

func BenchmarkWordSpotting(b *testing.B) {
	rec, err := bivoc.NewCarRentalRecognizer(bivoc.CallCenterChannel, bivoc.DefaultDecoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	sp := bivoc.NewSpotter(rec.Lex)
	sp.Threshold = 0.5
	ref := strings.Fields("i can offer you a discount on this booking that is a good rate")
	phones, err := rec.Lex.Phones(ref)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	obs := rec.Channel.Corrupt(r, phones)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if len(sp.Find("discount", obs)) > 0 {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hitRate")
}

// --- Ablation: SMS normalization on/off for churn ---

func BenchmarkAblationSMSNormalization(b *testing.B) {
	base := bivoc.DefaultChurnExperimentConfig()
	base.Channel = "sms"
	base.World.NumCustomers = 600
	base.World.Emails = 0
	base.World.SMS = 2500
	for _, normalize := range []bool{true, false} {
		name := "normalized"
		if !normalize {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			cfg := base
			cfg.NormalizeSMS = normalize
			var last *bivoc.ChurnExperimentResult
			for i := 0; i < b.N; i++ {
				res, err := bivoc.RunChurnExperiment(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(100*last.ChurnerRecall, "recall%")
		})
	}
}

// --- Ablation: language-model order (no-context / bigram / trigram) ---

func BenchmarkAblationLMOrderSweep(b *testing.B) {
	for _, order := range []int{1, 2, 3} {
		b.Run("order="+itoa(order), func(b *testing.B) {
			cfg := bivoc.DefaultASRExperimentConfig()
			cfg.NumCalls = benchCalls
			cfg.LMOrder = order
			var last *bivoc.ASRResult
			for i := 0; i < b.N; i++ {
				res, err := bivoc.RunASRExperiment(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(100*last.Overall, "WER%")
		})
	}
}

// --- Parallel transcription throughput (§III's volume challenge) ---

func BenchmarkParallelTranscription(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			cfg := bivoc.DefaultCallAnalysisConfig()
			cfg.World.CallsPerDay = 20
			cfg.World.Days = 1
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := bivoc.RunCallAnalysis(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Streaming pipeline throughput: sequential vs 1/2/4/8 workers ---
// Workers=1 is the sequential path; higher counts scale the transcribe
// and annotate pools. Decoding is pure CPU, so wall-clock speedup tracks
// available cores; on a single-core host the pipeline must at least not
// regress. BenchmarkLatencyOverlap in internal/pipeline shows the
// latency-bound case (remote ASR), which scales with workers even on
// one core.

func BenchmarkPipelineCallAnalysis(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			cfg := bivoc.DefaultCallAnalysisConfig()
			cfg.World.CallsPerDay = benchCalls
			cfg.World.Days = 1
			cfg.Workers = workers
			var calls int
			for i := 0; i < b.N; i++ {
				ca, err := bivoc.RunCallAnalysis(cfg)
				if err != nil {
					b.Fatal(err)
				}
				calls = ca.Index.Len()
			}
			b.ReportMetric(float64(calls)*float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
	}
}

// Analysis-only variant (no recognizer): the annotate stage dominates,
// so this isolates pipeline overhead at high item rates.
func BenchmarkPipelineCallAnalysisNoASR(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			cfg := bivoc.DefaultCallAnalysisConfig()
			cfg.UseASR = false
			cfg.World.CallsPerDay = 400
			cfg.World.Days = 2
			cfg.Workers = workers
			var calls int
			for i := 0; i < b.N; i++ {
				ca, err := bivoc.RunCallAnalysis(cfg)
				if err != nil {
					b.Fatal(err)
				}
				calls = ca.Index.Len()
			}
			b.ReportMetric(float64(calls)*float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
	}
}

// --- Serving layer: /v1/count over real HTTP, cold vs cached ---
// "cached" hits one hot URL, so after the first request every reply is
// a cache hit from the snapshot's LRU; "cold" disables the cache, so
// every request recomputes against the index. 1/4/8 concurrent clients
// share the iteration budget. Recorded in BENCH_server.json
// (`make bench-server`).

// benchQueryServer brings up a sealed query daemon over a mid-size
// world and tears it down with the benchmark.
func benchQueryServer(b *testing.B, cacheSize int) *bivoc.QueryServer {
	b.Helper()
	cfg := bivoc.DefaultServeConfig()
	cfg.Analysis.World.CallsPerDay = 100
	cfg.Analysis.World.Days = 4
	cfg.Addr = "127.0.0.1:0"
	cfg.CacheSize = cacheSize
	s, err := bivoc.NewQueryServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	})
	select {
	case <-s.IngestDone():
	case <-time.After(60 * time.Second):
		b.Fatal("ingest did not seal")
	}
	return s
}

func serverQueryClients(b *testing.B, u string, clients int) {
	tr := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: tr}
	var iter atomic.Int64
	var wg sync.WaitGroup
	// The server runs in-process, so allocs/op covers both sides of the
	// request — the gate on the pooled respond/marshal path.
	b.ReportAllocs()
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter.Add(1) <= int64(b.N) {
				resp, err := client.Get(u)
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	// Unpooled dialed-but-unused conns would make the server's graceful
	// drain wait out the StateNew grace period; close them now.
	tr.CloseIdleConnections()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkServerQuery(b *testing.B) {
	q := url.Values{"dim": {
		"outcome=reservation",
		"weak start[customer intention]",
	}}.Encode()
	for _, mode := range []struct {
		name  string
		cache int // 0 = default LRU, negative = disabled
	}{{"cached", 0}, {"cold", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			s := benchQueryServer(b, mode.cache)
			u := "http://" + s.Addr() + "/v1/count?" + q
			for _, clients := range []int{1, 4, 8} {
				b.Run("clients="+itoa(clients), func(b *testing.B) {
					serverQueryClients(b, u, clients)
				})
			}
		})
	}
}

// --- Streaming index: Add throughput while queries run ---

func BenchmarkStreamIndexAddWhileQuery(b *testing.B) {
	ca := referenceAnalysis(b)
	docs := make([]bivoc.MiningDocument, ca.Index.Len())
	for i := range docs {
		docs[i] = ca.Index.Doc(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si := bivoc.NewStreamIndex()
		stop := make(chan struct{})
		go func() {
			weak := bivoc.ConceptDim("customer intention", "weak start")
			res := bivoc.FieldDim("outcome", "reservation")
			for {
				select {
				case <-stop:
					return
				default:
					si.CountBoth(weak, res)
				}
			}
		}()
		for _, d := range docs {
			si.Add(d)
		}
		close(stop)
		si.Seal()
	}
	b.ReportMetric(float64(len(docs)), "docs")
}
