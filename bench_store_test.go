package bivoc_test

import (
	"testing"

	"bivoc/internal/mining"
	"bivoc/internal/store"
)

// Persistence benchmarks: what a seal costs (encode + fsync + rename),
// what a restart costs (cold segment load vs re-running the whole
// ingest pipeline — the warm-restart payoff), what WAL durability costs
// per document at each fsync cadence, and whether a disk-loaded index
// answers queries as fast as the pipeline-built one. `make bench-store`
// records the results in BENCH_store.json.

// storeBenchIndex builds the sealed 2000-call reference index once per
// benchmark process.
func storeBenchIndex(b *testing.B) *mining.Index {
	b.Helper()
	return referenceAnalysis(b).Index
}

// BenchmarkStoreSegmentEncode measures pure serialization: sealed index
// to segment bytes (string-table interning, varint postings deltas, CRC).
func BenchmarkStoreSegmentEncode(b *testing.B) {
	ix := storeBenchIndex(b)
	snap := ix.Export()
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(store.EncodeSegment(snap))
	}
	b.ReportMetric(float64(n), "segment_bytes")
}

// BenchmarkStoreSegmentWrite measures the full atomic seal-time write:
// encode, temp file, fsync, rename, directory fsync, prune.
func BenchmarkStoreSegmentWrite(b *testing.B) {
	ix := storeBenchIndex(b)
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	var stats store.Stats
	for i := 0; i < b.N; i++ {
		if stats, err = st.WriteSegment(ix); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.SegmentBytes), "segment_bytes")
}

// BenchmarkStoreRestart is the headline warm-restart comparison: the two
// ways a daemon can reach a query-ready sealed index over the reference
// corpus. pipeline-rebuild re-runs the whole ingest (transcribe, link,
// annotate, index, seal — what a restart cost before the store existed);
// segment-load reads, decodes, validates, and Prepares the segment.
func BenchmarkStoreRestart(b *testing.B) {
	ix := storeBenchIndex(b)
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	stats, err := st.WriteSegment(ix)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("pipeline-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := referenceAnalysis(b).Index; got.Len() != ix.Len() {
				b.Fatalf("rebuild produced %d docs, want %d", got.Len(), ix.Len())
			}
		}
	})
	b.Run("segment-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, _, err := store.LoadSegment(stats.SegmentPath)
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != ix.Len() {
				b.Fatalf("segment loaded %d docs, want %d", got.Len(), ix.Len())
			}
		}
	})
}

// BenchmarkStoreWALAppend measures per-document WAL durability cost at
// each fsync cadence: every document (the default — nothing acknowledged
// is ever lost) vs amortized over 64 (a bounded re-ingest window).
func BenchmarkStoreWALAppend(b *testing.B) {
	ix := storeBenchIndex(b)
	docs := make([]mining.Document, ix.Len())
	for i := range docs {
		docs[i] = ix.Doc(i)
	}
	for _, cadence := range []struct {
		name string
		n    int
	}{{"sync-every-1", 1}, {"sync-every-64", 64}} {
		b.Run(cadence.name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{SyncEvery: cadence.n})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.AppendWAL(docs[i%len(docs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreQueryDiskVsMemory runs the mining hot path — four-dim
// Count plus a 2x2 Associate — against the pipeline-built index and the
// same index after a disk round trip. The disk-loaded index is rebuilt
// by FromSnapshot and re-Prepared, so parity here means the segment
// format preserves everything the query layer's performance depends on
// (sorted postings, prepared caches).
func BenchmarkStoreQueryDiskVsMemory(b *testing.B) {
	mem := storeBenchIndex(b)
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	stats, err := st.WriteSegment(mem)
	if err != nil {
		b.Fatal(err)
	}
	disk, _, err := store.LoadSegment(stats.SegmentPath)
	if err != nil {
		b.Fatal(err)
	}

	dims := []mining.Dim{
		mining.ConceptDim("customer intention", "weak start"),
		mining.FieldDim("outcome", "reservation"),
		mining.CategoryDim("discount"),
		mining.AndDim(
			mining.ConceptDim("customer intention", "weak start"),
			mining.FieldDim("outcome", "reservation")),
	}
	rows := []mining.Dim{
		mining.ConceptDim("customer intention", "strong start"),
		mining.ConceptDim("customer intention", "weak start"),
	}
	cols := []mining.Dim{
		mining.FieldDim("outcome", "reservation"),
		mining.FieldDim("outcome", "unbooked"),
	}
	for _, src := range []struct {
		name string
		ix   *mining.Index
	}{{"memory", mem}, {"disk", disk}} {
		b.Run(src.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range dims {
					src.ix.Count(d)
				}
				src.ix.Associate(rows, cols, 0.95)
			}
		})
	}
}
