package bivoc_test

import (
	"fmt"
	"runtime"
	"testing"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
	"bivoc/internal/store"
)

// Persistence benchmarks: what a seal costs (encode + fsync + rename),
// what a restart costs (cold segment load vs re-running the whole
// ingest pipeline — the warm-restart payoff), what WAL durability costs
// per document at each fsync cadence, and whether a disk-loaded index
// answers queries as fast as the pipeline-built one. `make bench-store`
// records the results in BENCH_store.json.

// storeBenchIndex builds the sealed 2000-call reference index once per
// benchmark process.
func storeBenchIndex(b *testing.B) *mining.Index {
	b.Helper()
	return referenceAnalysis(b).Index
}

// BenchmarkStoreSegmentEncode measures pure serialization: sealed index
// to segment bytes (string-table interning, varint postings deltas, CRC).
func BenchmarkStoreSegmentEncode(b *testing.B) {
	ix := storeBenchIndex(b)
	snap := ix.Export()
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(store.EncodeSegment(snap))
	}
	b.ReportMetric(float64(n), "segment_bytes")
}

// BenchmarkStoreSegmentWrite measures the full atomic seal-time write:
// encode, temp file, fsync, rename, directory fsync, prune.
func BenchmarkStoreSegmentWrite(b *testing.B) {
	ix := storeBenchIndex(b)
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	var stats store.Stats
	for i := 0; i < b.N; i++ {
		if stats, err = st.WriteSegment(ix); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.SegmentBytes), "segment_bytes")
}

// BenchmarkStoreRestart is the headline warm-restart comparison: the two
// ways a daemon can reach a query-ready sealed index over the reference
// corpus. pipeline-rebuild re-runs the whole ingest (transcribe, link,
// annotate, index, seal — what a restart cost before the store existed);
// segment-load reads, decodes, validates, and Prepares the segment.
func BenchmarkStoreRestart(b *testing.B) {
	ix := storeBenchIndex(b)
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	stats, err := st.WriteSegment(ix)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("pipeline-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := referenceAnalysis(b).Index; got.Len() != ix.Len() {
				b.Fatalf("rebuild produced %d docs, want %d", got.Len(), ix.Len())
			}
		}
	})
	b.Run("segment-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, _, err := store.LoadSegment(stats.SegmentPath)
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != ix.Len() {
				b.Fatalf("segment loaded %d docs, want %d", got.Len(), ix.Len())
			}
		}
	})
}

// BenchmarkStoreWALAppend measures per-document WAL durability cost at
// each fsync cadence: every document (the default — nothing acknowledged
// is ever lost) vs amortized over 64 (a bounded re-ingest window).
func BenchmarkStoreWALAppend(b *testing.B) {
	ix := storeBenchIndex(b)
	docs := make([]mining.Document, ix.Len())
	for i := range docs {
		docs[i] = ix.Doc(i)
	}
	for _, cadence := range []struct {
		name string
		n    int
	}{{"sync-every-1", 1}, {"sync-every-64", 64}} {
		b.Run(cadence.name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{SyncEvery: cadence.n})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.AppendWAL(docs[i%len(docs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreQueryDiskVsMemory runs the mining hot path — four-dim
// Count plus a 2x2 Associate — against the pipeline-built index and the
// same index after a disk round trip. The disk-loaded index is rebuilt
// by FromSnapshot and re-Prepared, so parity here means the segment
// format preserves everything the query layer's performance depends on
// (sorted postings, prepared caches).
func BenchmarkStoreQueryDiskVsMemory(b *testing.B) {
	mem := storeBenchIndex(b)
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	stats, err := st.WriteSegment(mem)
	if err != nil {
		b.Fatal(err)
	}
	disk, _, err := store.LoadSegment(stats.SegmentPath)
	if err != nil {
		b.Fatal(err)
	}

	dims := []mining.Dim{
		mining.ConceptDim("customer intention", "weak start"),
		mining.FieldDim("outcome", "reservation"),
		mining.CategoryDim("discount"),
		mining.AndDim(
			mining.ConceptDim("customer intention", "weak start"),
			mining.FieldDim("outcome", "reservation")),
	}
	rows := []mining.Dim{
		mining.ConceptDim("customer intention", "strong start"),
		mining.ConceptDim("customer intention", "weak start"),
	}
	cols := []mining.Dim{
		mining.FieldDim("outcome", "reservation"),
		mining.FieldDim("outcome", "unbooked"),
	}
	for _, src := range []struct {
		name string
		ix   *mining.Index
	}{{"memory", mem}, {"disk", disk}} {
		b.Run(src.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range dims {
					src.ix.Count(d)
				}
				src.ix.Associate(rows, cols, 0.95)
			}
		})
	}
}

// Mapped-segment benchmarks. The reference pipeline tops out at 2000
// calls, so the scaling runs use a direct synthetic corpus with the
// same dimensional shape — concept vocabulary and field cardinality
// stay fixed while the postings grow, which is exactly the corpora the
// mmap path is for.

func storeScaleDocs(n int) []mining.Document {
	topics := []string{"billing", "coverage", "roadside", "upgrade", "refund"}
	places := []string{"austin", "dallas", "boston", "seattle", "reno"}
	docs := make([]mining.Document, n)
	for i := range docs {
		parity := "even"
		if i%2 == 1 {
			parity = "odd"
		}
		concepts := []annotate.Concept{{Category: "topic", Canonical: topics[i%len(topics)]}}
		if i%3 == 0 {
			concepts = append(concepts, annotate.Concept{Category: "place", Canonical: places[(i/3)%len(places)]})
		}
		docs[i] = mining.Document{
			ID:       fmt.Sprintf("scale-%07d", i),
			Concepts: concepts,
			Fields:   map[string]string{"parity": parity, "outcome": []string{"reservation", "unbooked", "service"}[i%3]},
			Time:     i / 100,
		}
	}
	return docs
}

// storeScaleSegment seals an n-document synthetic index into a segment
// file and returns its path.
func storeScaleSegment(b *testing.B, n int) string {
	b.Helper()
	si := mining.NewStreamIndex()
	si.AddBatch(storeScaleDocs(n))
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	stats, err := st.WriteSegment(si.Seal())
	if err != nil {
		b.Fatal(err)
	}
	return stats.SegmentPath
}

func heapInuse() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse)
}

// BenchmarkStoreOpenMappedVsMaterialized is the open-path scaling
// comparison across a 10x corpus growth: materialized open decodes
// every posting up front (cost grows with the corpus), mapped open
// validates the checksum and reads the O(#lists) directory (cost
// tracks the vocabulary, which is fixed here — so it stays flat).
// heap_bytes is the post-open resident heap: the materialized number
// carries the whole decoded index, the mapped number only the readers.
func BenchmarkStoreOpenMappedVsMaterialized(b *testing.B) {
	for _, n := range []int{5000, 50000} {
		path := storeScaleSegment(b, n)
		b.Run(fmt.Sprintf("docs=%d/materialized", n), func(b *testing.B) {
			base := heapInuse()
			var last *mining.Index
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, _, err := store.LoadSegment(path)
				if err != nil {
					b.Fatal(err)
				}
				last = ix
			}
			b.StopTimer()
			b.ReportMetric(heapInuse()-base, "heap_bytes")
			if last.Len() != n {
				b.Fatalf("loaded %d docs, want %d", last.Len(), n)
			}
		})
		b.Run(fmt.Sprintf("docs=%d/mapped", n), func(b *testing.B) {
			base := heapInuse()
			var last *mining.Index
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := store.OpenMapped(path, store.NewPostingsCache(store.DefaultPostingsBudget))
				if err != nil {
					b.Fatal(err)
				}
				ix := mining.FromBacking(m)
				ix.Prepare()
				last = ix
				b.StopTimer()
				m.Close()
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(heapInuse()-base, "heap_bytes")
			if last.Len() != n {
				b.Fatalf("mapped open sees %d docs, want %d", last.Len(), n)
			}
		})
	}
}

// BenchmarkStoreQueryMappedVsMaterialized runs the same hot query mix
// as BenchmarkStoreQueryDiskVsMemory against the 50k synthetic corpus:
// materialized (eager decode), mapped-hot (postings already resident in
// the decoded-postings cache — the acceptance bar is within ~1.2x of
// materialized), and mapped-first (cache cold, every list pays its lazy
// decode — the one-time cost a working set warms through).
func BenchmarkStoreQueryMappedVsMaterialized(b *testing.B) {
	const n = 50000
	path := storeScaleSegment(b, n)
	dims := []mining.Dim{
		mining.ConceptDim("topic", "billing"),
		mining.FieldDim("outcome", "reservation"),
		mining.CategoryDim("place"),
		mining.AndDim(mining.ConceptDim("topic", "billing"), mining.FieldDim("outcome", "reservation")),
	}
	rows := []mining.Dim{mining.ConceptDim("topic", "billing"), mining.ConceptDim("topic", "coverage")}
	cols := []mining.Dim{mining.FieldDim("outcome", "reservation"), mining.FieldDim("outcome", "unbooked")}
	queryOnce := func(ix *mining.Index) {
		for _, d := range dims {
			ix.Count(d)
		}
		ix.Associate(rows, cols, 0.95)
	}

	b.Run("materialized", func(b *testing.B) {
		ix, _, err := store.LoadSegment(path)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			queryOnce(ix)
		}
	})
	b.Run("mapped-hot", func(b *testing.B) {
		m, err := store.OpenMapped(path, store.NewPostingsCache(store.DefaultPostingsBudget))
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		ix := mining.FromBacking(m)
		ix.Prepare()
		queryOnce(ix) // warm the postings cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			queryOnce(ix)
		}
	})
	b.Run("mapped-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m, err := store.OpenMapped(path, store.NewPostingsCache(store.DefaultPostingsBudget))
			if err != nil {
				b.Fatal(err)
			}
			ix := mining.FromBacking(m)
			ix.Prepare()
			b.StartTimer()
			queryOnce(ix)
			b.StopTimer()
			m.Close()
			b.StartTimer()
		}
	})
}
