package bivoc_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"

	"bivoc/internal/server"
)

// End-to-end equivalence for the batched and cached query paths over
// the real call-analysis pipeline: a /v1/batch envelope on the single
// daemon, a /v1/batch envelope on a federated fleet, and a coordinator
// cache hit must all carry exactly the bytes the plain single-daemon
// GET serves. Transport shape (batched, scattered, cached) must never
// be observable in the analytics.

// storeEquivBatchQueries mirrors storeEquivEndpoints as /v1/batch
// sub-queries: same endpoints, same parameters, so each sub-result has
// a GET oracle to compare against byte for byte.
func storeEquivBatchQueries() (names []string, queries []server.BatchQuery) {
	weak := "weak start[customer intention]"
	strong := "strong start[customer intention]"
	res := "outcome=reservation"
	unb := "outcome=unbooked"
	conj := weak + " ∧ " + res
	add := func(name, endpoint string, params url.Values) {
		names = append(names, name)
		queries = append(queries, server.BatchQuery{Endpoint: endpoint, Params: params})
	}
	add("count", "count", url.Values{"dim": {res, weak, conj}})
	add("associate", "associate", url.Values{"row": {strong, weak}, "col": {res, unb}, "confidence": {"0.9"}})
	add("relfreq", "relfreq", url.Values{"category": {"discount"}, "featured": {conj}})
	add("drilldown", "drilldown", url.Values{"row": {weak}, "col": {res}, "limit": {"5"}})
	add("trend", "trend", url.Values{"dim": {weak}})
	add("concepts-cat", "concepts", url.Values{"category": {"customer intention"}})
	add("concepts-field", "concepts", url.Values{"field": {"outcome"}})
	return names, queries
}

// postBatch POSTs one /v1/batch request and decodes the envelope's
// results, failing on any transport, status, or sub-status problem.
func postBatch(t *testing.T, addr string, queries []server.BatchQuery) []server.BatchResult {
	t.Helper()
	body, err := json.Marshal(server.BatchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch: status %d: %s", resp.StatusCode, raw)
	}
	var env server.BatchResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Results) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(env.Results), len(queries))
	}
	for i, r := range env.Results {
		if r.Status != http.StatusOK {
			t.Fatalf("batch sub %d: status %d: %s", i, r.Status, r.Body)
		}
	}
	return env.Results
}

// TestBatchAndCachedPathsMatchSingleGETs pins every alternate serving
// path against the single-daemon GET oracle: mono /v1/batch, federated
// /v1/batch at shard counts {1, 4}, and the coordinator's
// generation-keyed cache (each endpoint fetched twice — uncached
// scatter, then hit), in both fast and naive analytics modes.
func TestBatchAndCachedPathsMatchSingleGETs(t *testing.T) {
	names, queries := storeEquivBatchQueries()
	endpoints := storeEquivEndpoints()
	delete(endpoints, "healthz")
	// The batch specs must address exactly the oracle URLs, or the
	// comparison proves nothing.
	for i, name := range names {
		path := "/v1/" + queries[i].Endpoint + "?" + url.Values(queries[i].Params).Encode()
		if path != endpoints[name] {
			t.Fatalf("batch spec %s renders %s, oracle path is %s", name, path, endpoints[name])
		}
	}

	restore := setMiningMode(false, 0)
	defer restore()
	mono, stopMono := runSealedServer(t, storeEquivConfig(""))
	want := make(map[string]string, len(names))
	for _, name := range names {
		want[name] = fetchBody(t, mono.Addr(), endpoints[name])
	}

	// Mono batch: the same snapshot, one request.
	for i, sub := range postBatch(t, mono.Addr(), queries) {
		if got := string(sub.Body) + "\n"; got != want[names[i]] {
			t.Errorf("mono batch %s diverges from GET:\n got %s\nwant %s", names[i], got, want[names[i]])
		}
	}
	stopMono()

	for _, naive := range []bool{false, true} {
		for _, n := range []int{1, 4} {
			t.Run(fmt.Sprintf("naive=%v/shards-%d", naive, n), func(t *testing.T) {
				restore := setMiningMode(naive, 0)
				defer restore()
				addr, stop := fedFleet(t, n)
				defer stop()

				// Federated batch: one scatter for the whole set.
				for i, sub := range postBatch(t, addr, queries) {
					if got := string(sub.Body) + "\n"; got != want[names[i]] {
						t.Errorf("fed batch %s diverges from mono GET:\n got %s\nwant %s", names[i], got, want[names[i]])
					}
				}

				// Cached federated GETs: the first fetch may scatter or
				// reuse the batch-populated entry, the repeat is a cache
				// hit — all must carry the oracle bytes.
				for _, name := range names {
					for pass := 0; pass < 2; pass++ {
						if got := fetchBody(t, addr, endpoints[name]); got != want[name] {
							t.Errorf("fed GET %s pass %d diverges from mono:\n got %s\nwant %s", name, pass, got, want[name])
						}
					}
				}
				var stats struct {
					FedCache struct {
						Hits uint64 `json:"hits"`
						Size int    `json:"size"`
					} `json:"fed_cache"`
				}
				if err := json.Unmarshal([]byte(fetchBody(t, addr, "/statsz")), &stats); err != nil {
					t.Fatal(err)
				}
				if stats.FedCache.Hits < 1 || stats.FedCache.Size < 1 {
					t.Errorf("coordinator cache never hit (hits=%d size=%d) — repeats did not exercise the cached path", stats.FedCache.Hits, stats.FedCache.Size)
				}
			})
		}
	}
}
