# Standard gate for every change: `make check` runs vet, build, and the
# full test suite under the race detector. CI and pre-commit should both
# use it.

GO ?= go

.PHONY: check vet build test race bench bench-pipeline bench-server bench-link bench-mine bench-store bench-seg bench-fed bench-load bench-build examples smoke

check: vet build race examples smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/bivocd
	$(GO) build -o /dev/null ./cmd/bivocfed
	$(GO) build -o /dev/null ./cmd/bivocload

test:
	$(GO) test ./...

# -timeout raised past the go test default: internal/core's full ASR
# decode suite exceeds 10m under the race detector on small hosts.
race:
	$(GO) test -race -timeout 30m ./...

# Quick loop while developing: skips the slow ASR decodes.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The streaming-pipeline scaling benchmarks recorded in BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -bench='BenchmarkPipelineCallAnalysis|BenchmarkStreamIndexAddWhileQuery' -run='^$$' .
	$(GO) test -bench='BenchmarkLatencyOverlap' -run='^$$' ./internal/pipeline/

# The serving-layer benchmarks recorded in BENCH_server.json.
bench-server:
	$(GO) test -bench='BenchmarkServerQuery' -run='^$$' .

# The linking hot-path benchmarks recorded in BENCH_link.json. Pass
# profiler hooks through BENCH_FLAGS, e.g.
#   make bench-link BENCH_FLAGS='-cpuprofile=cpu.out'
bench-link:
	$(GO) test -bench='BenchmarkLink$$|BenchmarkLinkFullScan$$|BenchmarkDictionaryTag$$|BenchmarkRunCallAnalysis$$' -benchmem -run='^$$' $(BENCH_FLAGS) .

# The analytics hot-path benchmarks recorded in BENCH_mine.json: every
# mining operation naive vs fast, plus /v1/associate end to end. Pass
# profiler hooks through BENCH_FLAGS, e.g.
#   make bench-mine BENCH_FLAGS='-cpuprofile=cpu.out'
bench-mine:
	$(GO) test -bench='BenchmarkMine|BenchmarkServerAssociate' -benchmem -run='^$$' $(BENCH_FLAGS) .

# The persistence benchmarks recorded in BENCH_store.json: seal-time
# segment writes, cold segment load vs full pipeline rebuild (the
# warm-restart payoff), WAL append cost per fsync cadence, disk-loaded
# vs in-memory query latency, and the mapped-segment sweep — mmap open
# vs materialized load across a 10x corpus growth (with post-open heap)
# plus hot/first query latency through the lazy-decode postings cache.
# Pass profiler hooks through BENCH_FLAGS, e.g.
#   make bench-store BENCH_FLAGS='-cpuprofile=cpu.out'
bench-store:
	$(GO) test -bench='BenchmarkStore' -benchmem -run='^$$' $(BENCH_FLAGS) .

# The segment-architecture benchmarks recorded in BENCH_seg.json: swap
# latency vs corpus size at a fixed ingest batch (monolithic reseal vs
# segmented seal) and monolithic vs 8-segment fan-in query latency.
# Pass profiler hooks through BENCH_FLAGS, e.g.
#   make bench-seg BENCH_FLAGS='-cpuprofile=cpu.out'
bench-seg:
	$(GO) test -bench='BenchmarkSeg' -benchmem -run='^$$' $(BENCH_FLAGS) .

# The federation benchmarks recorded in BENCH_fed.json: the
# scatter-gather query bundle through a bivocfed coordinator over a
# shard sweep {1, 2, 4, 8} of the same corpus, plus the coordinator
# cache's hit path against the same bundle. Pass profiler hooks
# through BENCH_FLAGS, e.g.
#   make bench-fed BENCH_FLAGS='-cpuprofile=cpu.out'
bench-fed:
	$(GO) test -bench='BenchmarkFed' -benchmem -run='^$$' $(BENCH_FLAGS) .

# The open-loop load sweep recorded in BENCH_load.json: cmd/bivocload
# self-boots a mono daemon and a four-shard federation over the same
# corpus, then sweeps offered QPS x batch size with coordinated-
# omission-corrected latency percentiles. Extra harness flags go
# through BENCH_FLAGS, e.g.
#   make bench-load BENCH_FLAGS='-qps 1000,4000 -duration 5s'
bench-load:
	$(GO) run ./cmd/bivocload -mix mixed,count -count-qps 8000,32000,64000 -out BENCH_load.json $(BENCH_FLAGS)

# One iteration of every benchmark, so benchmark code cannot rot.
bench-build:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

examples:
	$(GO) build ./examples/...

# Black-box daemon checks: build cmd/bivocd (and cmd/bivocfed over a
# two-shard fleet), start them, query /healthz and /v1/count, SIGINT,
# require a clean exit — plus one short bivocload self-boot sweep. The
# bivocd pattern also matches TestDaemonSmokeMapped, which restarts a
# durable daemon under -mmap and pins recovery from mapped segments.
smoke:
	$(GO) test -run TestDaemonSmoke -count=1 ./cmd/bivocd
	$(GO) test -run TestFedDaemonSmoke -count=1 ./cmd/bivocfed
	$(GO) test -run TestLoadSmoke -count=1 ./cmd/bivocload
