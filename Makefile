# Standard gate for every change: `make check` runs vet, build, and the
# full test suite under the race detector. CI and pre-commit should both
# use it.

GO ?= go

.PHONY: check vet build test race bench bench-pipeline examples

check: vet build race examples

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick loop while developing: skips the slow ASR decodes.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The streaming-pipeline scaling benchmarks recorded in BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -bench='BenchmarkPipelineCallAnalysis|BenchmarkStreamIndexAddWhileQuery' -run='^$$' .
	$(GO) test -bench='BenchmarkLatencyOverlap' -run='^$$' ./internal/pipeline/

examples:
	$(GO) build ./examples/...
