// Command experiments regenerates every table and figure of the BIVoC
// paper's evaluation, printing paper-reported versus measured values.
//
// Usage:
//
//	experiments [-exp all|table1|secondpass|table2|table3|table4|uplift|churn|fig4] [-scale small|full] [-seed N]
//
// The "small" scale keeps ASR-heavy experiments laptop-fast; "full"
// uses larger corpora for tighter estimates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bivoc"
	"bivoc/internal/core"
	"bivoc/internal/mining"
	"bivoc/internal/synth"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, table1, secondpass, table2, table3, table4, uplift, churn, fig4")
	scale := flag.String("scale", "small", "corpus scale: small or full")
	seed := flag.Uint64("seed", 2009, "master random seed")
	flag.Parse()

	full := *scale == "full"
	run := func(name string, fn func(bool, uint64) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n=== %s ===\n", name)
		if err := fn(full, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", runTable1)
	run("secondpass", runSecondPass)
	run("table2", runTable2)
	run("table3", runTable3)
	run("table4", runTable4)
	run("uplift", runUplift)
	run("churn", runChurn)
	run("fig4", runFig4)
}

func runTable1(full bool, seed uint64) error {
	cfg := bivoc.DefaultASRExperimentConfig()
	cfg.World.Seed = seed
	cfg.NumCalls = 120
	if full {
		cfg.NumCalls = 400
	}
	res, err := bivoc.RunASRExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table I — ASR performance (word error rate, %)")
	fmt.Printf("%-16s %8s %10s\n", "Entity", "Paper", "Measured")
	fmt.Printf("%-16s %8s %9.1f%%\n", "Entire Speech", "45%", 100*res.Overall)
	fmt.Printf("%-16s %8s %9.1f%%\n", "Names", "65%", 100*res.Names)
	fmt.Printf("%-16s %8s %9.1f%%\n", "Numbers", "45%", 100*res.Numbers)
	fmt.Printf("(%d utterances, %d reference words)\n", res.Utterances, res.RefWords)
	return nil
}

func runSecondPass(full bool, seed uint64) error {
	cfg := bivoc.DefaultSecondPassConfig()
	cfg.World.Seed = seed
	cfg.NumCalls = 120
	if full {
		cfg.NumCalls = 400
	}
	res, err := bivoc.RunSecondPassExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("§IV.A.1 — constrained second-pass name recognition")
	fmt.Printf("%-28s %8s %10s\n", "", "Paper", "Measured")
	fmt.Printf("%-28s %8s %9.1f%%\n", "Name accuracy, first pass", "—", 100*res.FirstPassNameAcc)
	fmt.Printf("%-28s %8s %9.1f%%\n", "Name accuracy, second pass", "—", 100*res.SecondPassNameAcc)
	fmt.Printf("%-28s %8s %+9.1f%%\n", "Absolute improvement", "+10%", 100*res.Improvement)
	fmt.Printf("(second pass applied to %d of %d calls with confident links)\n", res.LinkedCalls, res.Calls)
	return nil
}

func analysis(full bool, seed uint64, useASR bool) (*bivoc.CallAnalysis, error) {
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.World.Seed = seed
	cfg.UseASR = useASR
	if useASR {
		cfg.World.CallsPerDay = 60
		cfg.World.Days = 3
		if full {
			cfg.World.CallsPerDay = 150
			cfg.World.Days = 6
		}
	} else {
		cfg.World.CallsPerDay = 400
		cfg.World.Days = 10
		if full {
			cfg.World.CallsPerDay = 1800
			cfg.World.Days = 10
		}
	}
	return bivoc.RunCallAnalysis(cfg)
}

func runTable2(full bool, seed uint64) error {
	ca, err := analysis(full, seed, false)
	if err != nil {
		return err
	}
	t2 := ca.LocationVehicleTable()
	fmt.Println("Table II — two-dimensional association: location × vehicle type")
	fmt.Println("(the paper presents the empty matrix; cells below are joint counts")
	fmt.Println(" with the interval-estimated association index in brackets)")
	fmt.Printf("%-14s", "")
	for _, col := range t2.Cols {
		fmt.Printf("%14s", strings.TrimSuffix(col.Label(), "[vehicle type]"))
	}
	fmt.Println()
	for i, row := range t2.Rows {
		fmt.Printf("%-14s", strings.TrimSuffix(row.Label(), "[place]"))
		for j := range t2.Cols {
			c := t2.Cells[i][j]
			fmt.Printf("%8d[%4.2f]", c.Ncell, c.LowerIndex)
		}
		fmt.Println()
	}
	top := t2.StrongestCells()
	if len(top) > 0 {
		fmt.Printf("strongest association: %s × %s (lower index %.2f)\n",
			top[0].Row.Label(), top[0].Col.Label(), top[0].LowerIndex)
	}
	return nil
}

func runTable3(full bool, seed uint64) error {
	ca, err := analysis(full, seed, false)
	if err != nil {
		return err
	}
	t3 := ca.IntentOutcomeTable()
	fmt.Println("Table III — customer intention vs pick-up result (reference transcripts)")
	printOutcomeTable(t3, [][2]string{{"63%", "37%"}, {"32%", "68%"}})

	caASR, err := analysis(full, seed, true)
	if err != nil {
		return err
	}
	fmt.Println("\nTable III on ASR transcripts (45% WER operating point)")
	printOutcomeTable(caASR.IntentOutcomeTable(), [][2]string{{"63%", "37%"}, {"32%", "68%"}})
	return nil
}

func runTable4(full bool, seed uint64) error {
	ca, err := analysis(full, seed, false)
	if err != nil {
		return err
	}
	t4 := ca.AgentUtteranceTable()
	fmt.Println("Table IV — agent utterance vs customer objection result (reference transcripts)")
	printOutcomeTable(t4, [][2]string{{"59%", "41%"}, {"72%", "28%"}})

	caASR, err := analysis(full, seed, true)
	if err != nil {
		return err
	}
	fmt.Println("\nTable IV on ASR transcripts (45% WER operating point)")
	printOutcomeTable(caASR.AgentUtteranceTable(), [][2]string{{"59%", "41%"}, {"72%", "28%"}})
	return nil
}

func printOutcomeTable(t *bivoc.AssocTable, paper [][2]string) {
	fmt.Printf("%-24s %22s %22s\n", "", "reservation", "unbooked")
	for i, row := range t.Rows {
		label := row.Label()
		fmt.Printf("%-24s", label)
		for j := range t.Cols {
			cell := t.Cells[i][j]
			fmt.Printf("  paper %4s meas %4.0f%%", paper[i][j], 100*cell.RowShare)
		}
		fmt.Println()
	}
}

func runUplift(full bool, seed uint64) error {
	cfg := bivoc.DefaultTrainingConfig()
	cfg.World.Seed = seed
	if !full {
		cfg.World.CallsPerDay = 360
		cfg.BeforeDays = 20
		cfg.AfterDays = 20
	} else {
		cfg.World.CallsPerDay = 1800
		cfg.BeforeDays = 30
		cfg.AfterDays = 30
	}
	res, err := bivoc.RunTrainingExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("§V.C — agent training uplift (20 trained vs 70 control agents)")
	fmt.Printf("%-34s %8s %10s\n", "", "Paper", "Measured")
	fmt.Printf("%-34s %8s %+9.1f%%\n", "Conversion uplift after training", "+3%", 100*res.Uplift)
	fmt.Printf("%-34s %8s %+9.1f%%\n", "Group gap before training", "~0%", 100*res.BeforeGap)
	fmt.Printf("%-34s %8s %10.4f\n", "t-test p-value (one-sided)", "0.0675", res.TTest.POneSided)
	fmt.Printf("trained: %.1f%% → %.1f%%   control: %.1f%% → %.1f%%\n",
		100*res.TrainedBefore, 100*res.TrainedAfter, 100*res.ControlBefore, 100*res.ControlAfter)
	return nil
}

func runChurn(full bool, seed uint64) error {
	cfg := bivoc.DefaultChurnExperimentConfig()
	cfg.World.Seed = seed
	if full {
		cfg.World.NumCustomers = 4000
		cfg.World.Emails = 9000
		cfg.World.SMS = 20000
	}
	res, err := bivoc.RunChurnExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("§VI — churn prediction from customer emails")
	fmt.Printf("%-34s %8s %10s\n", "", "Paper", "Measured")
	fmt.Printf("%-34s %8s %9.1f%%\n", "Emails unlinkable", "18%", 100*res.UnlinkableRate)
	fmt.Printf("%-34s %8s %9.1f%%\n", "Churner detection (recall)", "53.6%", 100*res.ChurnerRecall)
	fmt.Printf("%-34s %8s %10d\n", "Messages processed", "47460", res.Messages)
	fmt.Printf("discarded: %d spam, %d non-english, %d empty; linked %d (%.1f%% to the true author)\n",
		res.Spam, res.NonEnglish, res.Empty, res.Linked, 100*res.LinkCorrect)
	fmt.Printf("eval month: %d churners seen, %d flagged; message-level TP/FP/TN/FN = %d/%d/%d/%d\n",
		res.ChurnersInEval, res.ChurnersFlagged, res.TP, res.FP, res.TN, res.FN)
	fmt.Printf("top churn indicators: %s\n", strings.Join(res.TopFeatures[:min(8, len(res.TopFeatures))], ", "))
	fmt.Printf("mean sentiment: churners %+.2f vs stayers %+.2f (§III: dissatisfaction marks churn propensity)\n",
		res.SentimentChurners, res.SentimentStayers)
	return nil
}

func runFig4(full bool, seed uint64) error {
	// Part 1 — the paper's actual Figure 4 content: competitor mentions
	// in emails × the category assigned to the email.
	ecfg := core.DefaultEmailAssociationConfig()
	ecfg.World.Seed = seed
	if full {
		ecfg.World.Emails = 9000
	}
	ea, err := core.RunEmailCategoryAnalysis(ecfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4 — competitor mentions × email category")
	fmt.Print(ea.Table.Render())
	strongest := ea.Table.StrongestCells()
	if len(strongest) > 0 && strongest[0].Ncell > 0 {
		top := strongest[0]
		fmt.Printf("strongest association: %s × %s (lower index %.2f, %d emails)\n",
			top.Row.Label(), top.Col.Label(), top.LowerIndex, top.Ncell)
		docs := ea.Index.DrillDown(top.Row, top.Col)
		for i, d := range docs {
			if i >= 2 {
				break
			}
			fmt.Printf("  drill: %s month=%d\n", d.ID, d.Time)
		}
	}

	// Part 2 — the same drill-down machinery on the call corpus.
	ca, err := analysis(full, seed, false)
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 4 (call view) — association analysis drill-down")
	rows := []bivoc.Dim{
		bivoc.ConceptDim("customer intention", "weak start"),
	}
	cols := []bivoc.Dim{
		bivoc.FieldDim("outcome", synth.OutcomeReservation),
		bivoc.FieldDim("outcome", synth.OutcomeUnbooked),
	}
	tbl := ca.Index.Associate(rows, cols, 0.95)
	fmt.Print(tbl.Render())
	docs := ca.Index.DrillDown(rows[0], cols[0])
	fmt.Printf("\ndrill-down: weak start × reservation → %d calls; first 3:\n", len(docs))
	for i, d := range docs {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s  agent=%s  concepts=%s\n", d.ID, d.Fields["agent"], conceptSummary(d))
	}
	rel := ca.WeakStartConversionDrivers()
	for _, r := range rel {
		fmt.Printf("relevancy: %q over-represented in converted calls ×%.2f (%d/%d vs %d/%d)\n",
			r.Concept, r.Ratio, r.InSubset, r.SubsetSize, r.InAll, r.N)
	}
	return nil
}

func conceptSummary(d mining.Document) string {
	var parts []string
	for _, c := range d.Concepts {
		parts = append(parts, c.Canonical+"["+c.Category+"]")
	}
	if len(parts) > 4 {
		parts = parts[:4]
	}
	return strings.Join(parts, ", ")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
