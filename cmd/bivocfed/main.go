// Command bivocfed is the BIVoC federation coordinator: it fronts a
// fleet of sharded bivocd daemons (each started with -shard i/n) and
// serves the same /v1 query API by scattering every query to all shards
// and gathering on integer marginals. Because shards hold disjoint
// document sets and all float math (Wilson intervals, relative
// frequencies, trend slopes) runs once on the merged integer counts, a
// healthy federation answers byte-identically to a single bivocd over
// the union of the shards' documents.
//
// Usage:
//
//	bivocfed -shards URL,URL,... [-addr HOST:PORT] [-shard-timeout D]
//	         [-fanout N] [-confidence P] [-assoc-workers N]
//	         [-cache-size N] [-cache-ttl D] [-drain-timeout D]
//
// The -shards list is ordered: shard i of the list must be the daemon
// ingesting with -shard i/n. A shard that is unreachable, times out, or
// fails internally degrades the answer instead of killing it: the
// response carries "degraded": true and "missing_shards", and the shard
// rejoins automatically on its next healthy reply — no coordinator
// restart.
//
// Every response carries the X-Bivoc-Generation header with the
// comma-joined per-shard generation vector ("-" for a missing shard).
//
// SIGINT/SIGTERM shut the coordinator down gracefully: in-flight
// scatters drain and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bivoc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "HTTP listen address (use :0 for a free port)")
	shards := flag.String("shards", "", "comma-separated shard base URLs, in shard order (required)")
	shardTimeout := flag.Duration("shard-timeout", 5*time.Second, "per-shard request timeout; a slower shard is treated as down for that query")
	fanout := flag.Int("fanout", 0, "max concurrent shard requests per query (0 = all shards at once)")
	confidence := flag.Float64("confidence", 0.95, "default association-interval confidence")
	assocWorkers := flag.Int("assoc-workers", 0, "workers per merged association table (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 0, "coordinator result-cache entries (0 = default 256, negative = off); a hit skips the scatter")
	cacheTTL := flag.Duration("cache-ttl", 0, "how long a scatter-observed generation vector stays trusted (0 = default 1s)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain bound")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "bivocfed: -shards is required (comma-separated base URLs)")
		os.Exit(2)
	}

	c, err := bivoc.NewFedCoordinator(bivoc.FedConfig{
		Addr:             *addr,
		Shards:           urls,
		ShardTimeout:     *shardTimeout,
		MaxFanout:        *fanout,
		Confidence:       *confidence,
		AssociateWorkers: *assocWorkers,
		CacheSize:        *cacheSize,
		CacheTTL:         *cacheTTL,
		DrainTimeout:     *drainTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bivocfed:", err)
		os.Exit(1)
	}
	if err := c.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "bivocfed:", err)
		os.Exit(1)
	}
	fmt.Printf("bivocfed: listening on %s (%d shards, timeout %v)\n",
		c.Addr(), len(urls), *shardTimeout)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("bivocfed: shutting down, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := c.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "bivocfed: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("bivocfed: stopped cleanly")
}
