package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bivoc"
)

// TestFedDaemonSmoke is the black-box federation check: start two
// in-process bivocd shards over a split corpus, build and run the real
// bivocfed binary against them, require the announced address to be the
// actual bound one, query through the coordinator until the full corpus
// is served, then SIGINT it and require a clean, graceful exit.
func TestFedDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the coordinator binary")
	}

	// Two shard daemons in-process: same world, each ingesting only the
	// calls ShardOf assigns to it.
	const nShards = 2
	shardURLs := make([]string, nShards)
	for i := 0; i < nShards; i++ {
		cfg := bivoc.DefaultServeConfig()
		cfg.Addr = "127.0.0.1:0"
		cfg.SwapInterval = 0
		cfg.SwapEvery = 8
		cfg.Analysis.World.CallsPerDay = 20
		cfg.Analysis.World.Days = 2
		cfg.ShardIndex = i
		cfg.ShardCount = nShards
		s, err := bivoc.NewQueryServer(cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		shardURLs[i] = "http://" + s.Addr()
	}

	bin := filepath.Join(t.TempDir(), "bivocfed")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-shards", strings.Join(shardURLs, ","))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The coordinator prints its bound address once the listener is live.
	sc := bufio.NewScanner(stdout)
	var addr string
	lineCh := make(chan string, 8)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	deadline := time.After(30 * time.Second)
	for addr == "" {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("coordinator exited before announcing its address")
			}
			if _, rest, found := strings.Cut(line, "listening on "); found {
				addr = strings.Fields(rest)[0]
			}
		case <-deadline:
			t.Fatal("coordinator did not announce its address in time")
		}
	}
	// -addr was :0, so the announced address must be the actual bound
	// one — a concrete nonzero port, not the wildcard back.
	if _, port, err := net.SplitHostPort(addr); err != nil || port == "0" || port == "" {
		t.Fatalf("announced address %q is not a concrete bound address (err %v)", addr, err)
	}
	base := "http://" + addr

	get := func(path string) ([]byte, http.Header) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body, resp.Header
	}

	var health struct {
		Status string `json:"status"`
		Shards []struct {
			OK bool `json:"ok"`
		} `json:"shards"`
	}
	hb, _ := get("/healthz")
	if err := json.Unmarshal(hb, &health); err != nil || len(health.Shards) != nShards {
		t.Fatalf("healthz = %s, err %v", hb, err)
	}

	var count struct {
		Total    int  `json:"total"`
		Degraded bool `json:"degraded"`
	}
	q := "/v1/count?" + url.Values{"dim": {"outcome=reservation"}}.Encode()
	// Shard ingest may still be warming up; wait until the federated
	// total covers the whole 40-call corpus.
	var genVec string
	for i := 0; ; i++ {
		body, hdr := get(q)
		count = struct {
			Total    int  `json:"total"`
			Degraded bool `json:"degraded"`
		}{}
		if err := json.Unmarshal(body, &count); err != nil {
			t.Fatal(err)
		}
		genVec = hdr.Get("X-Bivoc-Generation")
		if count.Total == 40 {
			break
		}
		if i > 600 {
			t.Fatalf("federated index never reached 40 docs (total=%d)", count.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if count.Degraded {
		t.Error("federated count reported degraded with all shards up")
	}
	if parts := strings.Split(genVec, ","); len(parts) != nShards {
		t.Errorf("generation vector %q: want %d entries", genVec, nShards)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait — Wait closes the pipe and would
	// race the scanner out of the final lines.
	var sawStopped bool
	drainDeadline := time.After(15 * time.Second)
drain:
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				break drain
			}
			if strings.Contains(line, "stopped cleanly") {
				sawStopped = true
			}
		case <-drainDeadline:
			t.Fatal("coordinator did not close stdout after SIGINT")
		}
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("coordinator exited non-zero after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not exit after SIGINT")
	}
	if !sawStopped {
		t.Error("coordinator did not report a clean stop")
	}
}
