// Command bivocd is the BIVoC query daemon: it generates a synthetic
// car-rental engagement, runs the call-analysis ingest pipeline in the
// background, and serves the §IV.D mining operations over HTTP JSON
// while the index is still being built. Snapshots of the index are
// hot-swapped on a configurable cadence, so answers are available from
// the first seconds of ingest and settle onto the final sealed index.
//
// Usage:
//
//	bivocd [-addr HOST:PORT] [-asr] [-notes] [-seed N] [-calls N]
//	       [-days N] [-workers N] [-swap-interval D] [-swap-every N]
//	       [-max-segments N] [-cache N] [-confidence P] [-assoc-workers N]
//	       [-drain-timeout D] [-data-dir PATH] [-wal-sync N] [-shard I/N]
//	       [-mmap] [-postings-budget BYTES]
//
// With -shard i/n the daemon ingests only the calls whose document ID
// hashes onto shard i of n (see internal/fed); run n such daemons and
// front them with bivocfed for a federated deployment.
//
// With -data-dir the daemon is durable: every ingested call is logged
// to an on-disk WAL (fsynced every -wal-sync documents), the sealed
// index is written as a checksummed binary segment, and a restart
// recovers segment + WAL tail and skips re-processing durable calls —
// a warm restart over a completed corpus serves the full index in
// well under a second instead of re-running the whole pipeline.
//
// With -mmap (requires -data-dir) sealed segments are served from
// mmap-backed postings with lazy decode: recovery maps the on-disk
// segment instead of materializing it, compactions swap their merged
// heap index for a mapped view of the bytes just written, and hot
// postings are cached under the -postings-budget byte cap. Query
// results are byte-identical to the materialized path; the win is
// opening corpora larger than memory in O(#lists) time and letting
// resident size track the working set instead of the corpus.
//
// Endpoints:
//
//	/v1/count?dim=L[&dim=L...]        counts per dimension label
//	/v1/associate?row=L&col=L[&confidence=P]
//	/v1/relfreq?category=C&featured=L
//	/v1/drilldown?row=L&col=L[&limit=N]
//	/v1/trend?dim=L
//	/v1/concepts?category=C | ?field=F
//	/healthz, /statsz
//
// Dimension labels use the mining grammar: `field=value`,
// `canonical[category]`, a bare category, or conjunctions joined with
// " ∧ " (URL-escape it: %20%E2%88%A7%20).
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, the ingest pipeline stops cleanly, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bivoc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for a free port)")
	useASR := flag.Bool("asr", false, "transcribe calls with the ASR substrate (slower, noisier ingest)")
	useNotes := flag.Bool("notes", false, "ingest agent wrap-up notes instead of transcripts")
	seed := flag.Uint64("seed", 2009, "master random seed")
	calls := flag.Int("calls", 400, "calls per day")
	days := flag.Int("days", 10, "days of traffic")
	workers := flag.Int("workers", 0, "per-stage ingest worker count (0 = GOMAXPROCS)")
	swapInterval := flag.Duration("swap-interval", time.Second, "publish a fresh index snapshot this often (0 = off)")
	swapEvery := flag.Int("swap-every", 0, "publish a fresh snapshot every N ingested calls (0 = off)")
	maxSegments := flag.Int("max-segments", 0, "compact the serving index past this many segments (0 = default 8, negative = never)")
	cacheSize := flag.Int("cache", 0, "query-result cache entries per snapshot (0 = default 256, negative = off)")
	confidence := flag.Float64("confidence", 0.95, "default association-interval confidence")
	assocWorkers := flag.Int("assoc-workers", 0, "workers per association-table request (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain bound")
	dataDir := flag.String("data-dir", "", "persistence directory: segments + ingest WAL (empty = in-memory only)")
	walSync := flag.Int("wal-sync", 1, "fsync the ingest WAL every N documents (1 = every document)")
	shard := flag.String("shard", "", "serve as shard i of n, as \"i/n\" (empty = serve everything); pair with bivocfed")
	useMmap := flag.Bool("mmap", false, "serve sealed segments from mmap-backed postings with lazy decode (requires -data-dir)")
	postingsBudget := flag.Int64("postings-budget", 0, "byte cap on cached decoded postings under -mmap (0 = default 64 MiB, negative = unbounded)")
	flag.Parse()

	if *useMmap && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "bivocd: -mmap requires -data-dir")
		os.Exit(2)
	}

	shardIndex, shardCount, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bivocd:", err)
		os.Exit(2)
	}

	cfg := bivoc.DefaultServeConfig()
	cfg.Addr = *addr
	cfg.SwapInterval = *swapInterval
	cfg.SwapEvery = *swapEvery
	cfg.MaxSegments = *maxSegments
	cfg.CacheSize = *cacheSize
	cfg.AssociateWorkers = *assocWorkers
	cfg.DrainTimeout = *drainTimeout
	cfg.Analysis.UseASR = *useASR
	cfg.Analysis.UseNotes = *useNotes
	cfg.Analysis.World.Seed = *seed
	cfg.Analysis.World.CallsPerDay = *calls
	cfg.Analysis.World.Days = *days
	cfg.Analysis.Workers = *workers
	cfg.Analysis.Confidence = *confidence
	cfg.DataDir = *dataDir
	cfg.WALSyncEvery = *walSync
	cfg.MapSegments = *useMmap
	cfg.PostingsBudget = *postingsBudget
	cfg.ShardIndex = shardIndex
	cfg.ShardCount = shardCount

	s, err := bivoc.NewQueryServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bivocd:", err)
		os.Exit(1)
	}
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "bivocd:", err)
		os.Exit(1)
	}
	fmt.Printf("bivocd: listening on %s (%d calls/day x %d days, asr=%v)\n",
		s.Addr(), *calls, *days, *useASR)
	if shardCount > 1 {
		fmt.Printf("bivocd: serving shard %d/%d\n", shardIndex, shardCount)
	}
	if *dataDir != "" {
		segDocs, walDocs, walDropped := s.RecoveryInfo()
		fmt.Printf("bivocd: persistence at %s: recovered %d docs from segment, %d from WAL (%d torn bytes dropped)\n",
			*dataDir, segDocs, walDocs, walDropped)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("bivocd: shutting down, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "bivocd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("bivocd: stopped cleanly")
}

// parseShard parses the -shard flag: "" means not sharded (0 of 1),
// otherwise "i/n" with 0 ≤ i < n.
func parseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\"", s)
	}
	index, err = strconv.Atoi(strings.TrimSpace(i))
	if err == nil {
		count, err = strconv.Atoi(strings.TrimSpace(n))
	}
	if err != nil || count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\" with 0 <= i < n", s)
	}
	return index, count, nil
}
