package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the black-box daemon check `make check` runs:
// build the real binary, start it, hit /healthz and a /v1/count query,
// then SIGINT it and require a clean, graceful exit.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "bivocd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-calls", "20", "-days", "2",
		"-swap-every", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address once the listener is live.
	sc := bufio.NewScanner(stdout)
	var addr string
	lineCh := make(chan string, 8)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	deadline := time.After(30 * time.Second)
	for addr == "" {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("daemon exited before announcing its address")
			}
			if _, rest, found := strings.Cut(line, "listening on "); found {
				addr = strings.Fields(rest)[0]
			}
		case <-deadline:
			t.Fatal("daemon did not announce its address in time")
		}
	}
	// -addr was :0, so the announced address must be the actual bound
	// one — a concrete nonzero port, not the wildcard back.
	if _, port, err := net.SplitHostPort(addr); err != nil || port == "0" || port == "" {
		t.Fatalf("announced address %q is not a concrete bound address (err %v)", addr, err)
	}
	base := "http://" + addr

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(get("/healthz"), &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz = %+v, err %v", health, err)
	}

	var count struct {
		Total  int   `json:"total"`
		Counts []int `json:"counts"`
	}
	q := "/v1/count?" + url.Values{"dim": {"outcome=reservation"}}.Encode()
	// Ingest may still be warming up; wait until the sealed index (40
	// calls) is served.
	for i := 0; ; i++ {
		if err := json.Unmarshal(get(q), &count); err != nil {
			t.Fatal(err)
		}
		if count.Total == 40 {
			break
		}
		if i > 600 {
			t.Fatalf("index never reached 40 docs (total=%d)", count.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if count.Counts[0] == 0 || count.Counts[0] >= count.Total {
		t.Errorf("implausible reservation count %d of %d", count.Counts[0], count.Total)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait — Wait closes the pipe and would
	// race the scanner out of the final lines.
	var sawStopped bool
	drainDeadline := time.After(15 * time.Second)
drain:
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				break drain
			}
			if strings.Contains(line, "stopped cleanly") {
				sawStopped = true
			}
		case <-drainDeadline:
			t.Fatal("daemon did not close stdout after SIGINT")
		}
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
	if !sawStopped {
		t.Error("daemon did not report a clean stop")
	}
}
