package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the black-box daemon check `make check` runs:
// build the real binary, start it, hit /healthz and a /v1/count query,
// then SIGINT it and require a clean, graceful exit.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "bivocd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-calls", "20", "-days", "2",
		"-swap-every", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address once the listener is live.
	sc := bufio.NewScanner(stdout)
	var addr string
	lineCh := make(chan string, 8)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	deadline := time.After(30 * time.Second)
	for addr == "" {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("daemon exited before announcing its address")
			}
			if _, rest, found := strings.Cut(line, "listening on "); found {
				addr = strings.Fields(rest)[0]
			}
		case <-deadline:
			t.Fatal("daemon did not announce its address in time")
		}
	}
	// -addr was :0, so the announced address must be the actual bound
	// one — a concrete nonzero port, not the wildcard back.
	if _, port, err := net.SplitHostPort(addr); err != nil || port == "0" || port == "" {
		t.Fatalf("announced address %q is not a concrete bound address (err %v)", addr, err)
	}
	base := "http://" + addr

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(get("/healthz"), &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz = %+v, err %v", health, err)
	}

	var count struct {
		Total  int   `json:"total"`
		Counts []int `json:"counts"`
	}
	q := "/v1/count?" + url.Values{"dim": {"outcome=reservation"}}.Encode()
	// Ingest may still be warming up; wait until the sealed index (40
	// calls) is served.
	for i := 0; ; i++ {
		if err := json.Unmarshal(get(q), &count); err != nil {
			t.Fatal(err)
		}
		if count.Total == 40 {
			break
		}
		if i > 600 {
			t.Fatalf("index never reached 40 docs (total=%d)", count.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if count.Counts[0] == 0 || count.Counts[0] >= count.Total {
		t.Errorf("implausible reservation count %d of %d", count.Counts[0], count.Total)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait — Wait closes the pipe and would
	// race the scanner out of the final lines.
	var sawStopped bool
	drainDeadline := time.After(15 * time.Second)
drain:
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				break drain
			}
			if strings.Contains(line, "stopped cleanly") {
				sawStopped = true
			}
		case <-drainDeadline:
			t.Fatal("daemon did not close stdout after SIGINT")
		}
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
	if !sawStopped {
		t.Error("daemon did not report a clean stop")
	}
}

// daemon is one running bivocd under test: its base URL, its stdout
// lines, and a stop func that SIGINTs and requires a clean exit.
type daemon struct {
	t     *testing.T
	cmd   *exec.Cmd
	base  string
	lines []string // stdout seen before the address line
	ch    chan string
}

// startDaemon launches bin with args and waits for the address line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	d := &daemon{t: t, cmd: cmd, ch: make(chan string, 64)}
	sc := bufio.NewScanner(stdout)
	go func() {
		for sc.Scan() {
			d.ch <- sc.Text()
		}
		close(d.ch)
	}()
	deadline := time.After(30 * time.Second)
	for d.base == "" {
		select {
		case line, ok := <-d.ch:
			if !ok {
				t.Fatal("daemon exited before announcing its address")
			}
			d.lines = append(d.lines, line)
			if _, rest, found := strings.Cut(line, "listening on "); found {
				d.base = "http://" + strings.Fields(rest)[0]
			}
		case <-deadline:
			t.Fatal("daemon did not announce its address in time")
		}
	}
	return d
}

func (d *daemon) get(path string) []byte {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// waitSealedTotal polls /v1/count until the sealed index serves want
// documents, returning the final response with the publication-cadence
// dependent generation field normalized out (restart runs publish a
// different number of snapshots over the same corpus).
func (d *daemon) waitSealedTotal(want int) string {
	d.t.Helper()
	var count struct {
		Sealed bool     `json:"sealed"`
		Total  int      `json:"total"`
		Dims   []string `json:"dims"`
		Counts []int    `json:"counts"`
	}
	q := "/v1/count?" + url.Values{"dim": {"outcome=reservation"}}.Encode()
	for i := 0; ; i++ {
		if err := json.Unmarshal(d.get(q), &count); err != nil {
			d.t.Fatal(err)
		}
		if count.Sealed && count.Total == want {
			count.Sealed = false
			norm, err := json.Marshal(count)
			if err != nil {
				d.t.Fatal(err)
			}
			return string(norm)
		}
		if i > 600 {
			d.t.Fatalf("index never sealed at %d docs (sealed=%v total=%d)", want, count.Sealed, count.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop SIGINTs the daemon, drains stdout, and requires a clean exit.
// It returns every stdout line the daemon printed.
func (d *daemon) stop() []string {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGINT); err != nil {
		d.t.Fatal(err)
	}
	var sawStopped bool
	drainDeadline := time.After(15 * time.Second)
drain:
	for {
		select {
		case line, ok := <-d.ch:
			if !ok {
				break drain
			}
			d.lines = append(d.lines, line)
			if strings.Contains(line, "stopped cleanly") {
				sawStopped = true
			}
		case <-drainDeadline:
			d.t.Fatal("daemon did not close stdout after SIGINT")
		}
	}
	exited := make(chan error, 1)
	go func() { exited <- d.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			d.t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		d.t.Fatal("daemon did not exit after SIGINT")
	}
	if !sawStopped {
		d.t.Error("daemon did not report a clean stop")
	}
	return d.lines
}

// TestDaemonSmokeMapped is the -mmap black-box check (the name rides
// `make smoke`'s -run TestDaemonSmoke pattern): run a durable daemon
// cold to seal a corpus on disk, then boot it again with -mmap and
// require the warm restart to recover from the mapped segment and
// answer identically to the cold run.
func TestDaemonSmokeMapped(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "bivocd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	args := func(extra ...string) []string {
		return append([]string{
			"-addr", "127.0.0.1:0",
			"-calls", "20", "-days", "2",
			"-swap-every", "8",
			"-data-dir", dataDir,
		}, extra...)
	}

	// Cold run: ingest, seal, persist — already under -mmap, which only
	// kicks in for recovered and compacted segments.
	cold := startDaemon(t, bin, args("-mmap")...)
	want := cold.waitSealedTotal(40)
	cold.stop()

	// Warm run: recovery serves the sealed corpus from a mapped segment.
	warm := startDaemon(t, bin, args("-mmap")...)
	if got := warm.waitSealedTotal(40); got != want {
		t.Errorf("mapped warm restart drifted:\n cold %s\n warm %s", want, got)
	}
	var sz struct {
		Store struct {
			MappedSegments int `json:"mapped_segments"`
		} `json:"store"`
		Memory struct {
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"memory"`
	}
	if err := json.Unmarshal(warm.get("/statsz"), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.Store.MappedSegments < 1 {
		t.Errorf("warm -mmap daemon serves %d mapped segments, want >= 1", sz.Store.MappedSegments)
	}
	if sz.Memory.HeapAllocBytes == 0 {
		t.Error("statsz memory section is empty")
	}
	lines := warm.stop()
	var sawRecovery bool
	for _, line := range lines {
		if strings.Contains(line, "recovered 40 docs from segment") {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Errorf("warm restart did not report segment recovery; stdout: %q", lines)
	}

	// -mmap without -data-dir is a usage error.
	bad := exec.Command(bin, "-addr", "127.0.0.1:0", "-mmap")
	if err := bad.Run(); err == nil {
		t.Error("-mmap without -data-dir did not fail")
	}
}
