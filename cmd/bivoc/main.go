// Command bivoc runs the full BIVoC pipeline on a synthetic car-rental
// engagement and prints the business-intelligence reports of §IV.D/§V:
// the intent and agent-utterance association tables, the location ×
// vehicle matrix, relevancy analysis, trends, and a Figure 4-style
// drill-down from a selected cell to individual calls.
//
// Usage:
//
//	bivoc [-asr] [-seed N] [-calls N] [-days N] [-drill row,col]
//	      [-stream] [-workers N]
//	      [-retries N] [-retry-delay D] [-stage-timeout D]
//	      [-max-dead-letters N] [-fault-rate P]
//
// With -stream the run goes through the staged concurrent pipeline
// (transcribe → link → annotate → index) and live per-stage stats are
// printed to stderr while the mining index is queried mid-flight — the
// query-while-indexing view a production deployment would expose.
//
// The fault-tolerance flags mirror a production ingest: -retries and
// -retry-delay re-run transiently failing stage attempts with capped,
// deterministically jittered backoff; -stage-timeout bounds each
// attempt; -max-dead-letters lets that many calls fail permanently
// without aborting the run (they are reported at the end instead).
// -fault-rate injects deterministic transient faults into the annotate
// stage so the retry machinery can be watched live — the final reports
// stay byte-identical to a fault-free run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bivoc"
	"bivoc/internal/mining"
	"bivoc/internal/report"
	"bivoc/internal/rng"
	"bivoc/internal/synth"
)

func main() {
	useASR := flag.Bool("asr", false, "transcribe calls with the ASR substrate (slower, noisier)")
	useNotes := flag.Bool("notes", false, "analyze agent wrap-up notes instead of transcripts")
	seed := flag.Uint64("seed", 2009, "master random seed")
	calls := flag.Int("calls", 400, "calls per day")
	days := flag.Int("days", 10, "days of traffic")
	drill := flag.String("drill", "weak start,reservation", "drill-down cell: intent,outcome")
	stream := flag.Bool("stream", false, "print live per-stage pipeline stats and mid-flight index queries")
	workers := flag.Int("workers", 0, "per-stage worker count (0 = GOMAXPROCS, 1 = sequential)")
	retries := flag.Int("retries", 1, "max attempts per call per stage (1 = no retry)")
	retryDelay := flag.Duration("retry-delay", time.Millisecond, "base backoff before a retry (doubles per attempt, jittered)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-attempt stage timeout (0 = unbounded)")
	maxDead := flag.Int("max-dead-letters", 0, "calls allowed to fail permanently before the run aborts (0 = fail fast)")
	faultRate := flag.Float64("fault-rate", 0, "inject transient faults into this fraction of annotate attempts (demo)")
	flag.Parse()

	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.World.Seed = *seed
	cfg.World.CallsPerDay = *calls
	cfg.World.Days = *days
	cfg.UseASR = *useASR
	cfg.UseNotes = *useNotes
	cfg.Workers = *workers
	if *useASR && *calls > 100 {
		fmt.Fprintln(os.Stderr, "note: ASR mode decodes every call; consider -calls 60")
	}
	if *stream {
		cfg.Monitor = liveStatsMonitor
	}
	cfg.FaultTolerance = bivoc.FaultTolerance{
		Retry: bivoc.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   *retryDelay,
			Jitter:      0.5,
		},
		Timeout:        *stageTimeout,
		MaxDeadLetters: *maxDead,
	}
	if *faultRate > 0 {
		cfg.FaultInject = demoFaults(*seed, *faultRate)
	}

	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bivoc: %v\n", err)
		os.Exit(1)
	}
	if n := len(ca.DeadLetters); n > 0 {
		fmt.Fprintf(os.Stderr, "dead letters: %d calls failed permanently and were excluded from the reports\n", n)
		for i, dl := range ca.DeadLetters {
			if i >= 5 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", n-5)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s died in stage %s after %d attempt(s): %v\n", dl.Key, dl.Stage, dl.Attempts, dl.Err)
		}
	}
	fmt.Printf("analyzed %d calls across %d agents (channel: %s)\n\n",
		ca.Index.Len(), len(ca.World.Agents), channelKind(cfg.UseASR, cfg.UseNotes))

	fmt.Println("— contact-centre KPIs (the operational view BIVoC extends) —")
	fmt.Print(report.RenderCenterDashboard(report.CenterKPIs(ca.World.Calls)))
	fmt.Println()
	fmt.Print(report.RenderAgentDashboard(report.AgentKPIs(ca.World, ca.World.Calls), 3))
	fmt.Println()

	fmt.Println("— customer intention × outcome (Table III) —")
	fmt.Print(ca.IntentOutcomeTable().Render())

	fmt.Println("\n— agent utterance × outcome (Table IV) —")
	fmt.Print(ca.AgentUtteranceTable().Render())

	fmt.Println("\n— revenue rollup from the structured side (booking cost by vehicle) —")
	resTab := ca.World.DB.MustTable("reservations")
	agg := resTab.Aggregate("vehicle", "cost")
	for _, vt := range synth.VehicleTypes() {
		st := agg[vt]
		fmt.Printf("  %-12s bookings=%4d  total=$%-7.0f avg=$%.0f\n", vt, st.Count, st.Sum, st.Mean())
	}

	fmt.Println("\n— location × vehicle type (Table II), strongest associations —")
	for i, cell := range ca.LocationVehicleTable().StrongestCells() {
		if i >= 5 || cell.Ncell == 0 {
			break
		}
		fmt.Printf("  %-26s × %-14s joint=%d lower-index=%.2f\n",
			cell.Row.Label(), cell.Col.Label(), cell.Ncell, cell.LowerIndex)
	}

	fmt.Println("\n— relevancy: concepts over-represented in converted calls —")
	for _, r := range ca.Index.RelativeFrequency("discount", bivoc.FieldDim("outcome", synth.OutcomeReservation)) {
		fmt.Printf("  %-24s ratio %.2f (%d/%d in subset vs %d/%d overall)\n",
			r.Concept, r.Ratio, r.InSubset, r.SubsetSize, r.InAll, r.N)
	}

	fmt.Println("\n— trend: weak-start volume per day —")
	points := ca.Index.Trend(bivoc.ConceptDim("customer intention", "weak start"))
	for _, p := range points {
		fmt.Printf("  day %2d %s (%d)\n", p.Time, strings.Repeat("#", p.Count/5+1), p.Count)
	}
	fmt.Printf("  slope: %+.2f calls/day\n", mining.TrendSlope(points))

	parts := strings.SplitN(*drill, ",", 2)
	if len(parts) == 2 {
		row := bivoc.ConceptDim("customer intention", strings.TrimSpace(parts[0]))
		col := bivoc.FieldDim("outcome", strings.TrimSpace(parts[1]))
		docs := ca.Index.DrillDown(row, col)
		fmt.Printf("\n— drill-down: %s × %s → %d calls (Figure 4 view) —\n", row.Label(), col.Label(), len(docs))
		for i, d := range docs {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(docs)-5)
				break
			}
			fmt.Printf("  %s agent=%s concepts=%s\n", d.ID, d.Fields["agent"], summarize(d))
		}
	}
}

// liveStatsMonitor renders the streaming dashboard: one stderr block per
// tick with stage counters and a live query against the growing index
// (weak-start count and its conversion share so far).
func liveStatsMonitor(m *bivoc.StreamMonitor) {
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	render := func(final bool) {
		tag := "stream"
		if final {
			tag = "stream final"
		}
		fmt.Fprintf(os.Stderr, "—— %s ——\n", tag)
		for _, st := range m.StageStats() {
			fmt.Fprintf(os.Stderr, "  %-10s workers=%d in=%-6d out=%-6d skip=%-4d err=%-3d retry=%-4d dl=%-3d tmo=%-3d queue=%d/%d avg=%s\n",
				st.Name, st.Workers, st.In, st.Out, st.Skipped, st.Errors,
				st.Retries, st.DeadLetters, st.Timeouts,
				st.QueueDepth, st.QueueCap, st.AvgLatency.Round(time.Microsecond))
		}
		live := m.Live()
		weak := bivoc.ConceptDim("customer intention", "weak start")
		converted := live.CountBoth(weak, bivoc.FieldDim("outcome", synth.OutcomeReservation))
		total := live.Count(weak)
		share := 0.0
		if total > 0 {
			share = 100 * float64(converted) / float64(total)
		}
		fmt.Fprintf(os.Stderr, "  indexed=%d weak-start=%d converting=%.0f%% (queried mid-stream)\n",
			live.Len(), total, share)
	}
	for {
		select {
		case <-m.Done():
			render(true)
			return
		case <-tick.C:
			render(false)
		}
	}
}

// demoFaults injects a transient fault into the first annotate attempt
// of a deterministic rate-sized fraction of calls, so the -stream
// dashboard shows the retry counters moving. Keyed by seed and call ID
// — never by wall clock — so the same invocation always flakes the same
// calls and the reports stay byte-identical to a fault-free run.
func demoFaults(seed uint64, rate float64) bivoc.FaultFn {
	r := rng.New(seed).SplitString("demo-faults")
	return func(stage, key string, attempt int) error {
		if stage == "annotate" && attempt == 1 && r.SplitString(key).Float64() < rate {
			return bivoc.Transient(fmt.Errorf("injected demo fault on %s", key))
		}
		return nil
	}
}

func transcriptKind(asr bool) string {
	if asr {
		return "ASR"
	}
	return "reference"
}

func channelKind(asr, notes bool) string {
	if notes {
		return "agent notes"
	}
	return transcriptKind(asr)
}

func summarize(d mining.Document) string {
	var parts []string
	for _, c := range d.Concepts {
		parts = append(parts, c.Canonical)
	}
	if len(parts) > 5 {
		parts = parts[:5]
	}
	return strings.Join(parts, ", ")
}
