// Command genvoc generates the synthetic Voice-of-Customer corpora and
// structured tables to disk, or prints Figure 1-style samples.
//
// Usage:
//
//	genvoc -out DIR [-seed N] [-calls N] [-emails N] [-sms N]   write corpora
//	genvoc -show                                                 print samples
//
// Outputs under DIR:
//
//	customers.csv, reservations.csv    car-rental warehouse tables
//	calls.jsonl                        calls with reference transcripts
//	subscribers.csv                    telecom subscriber table
//	emails.jsonl, sms.jsonl            raw messages with hidden labels
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bivoc/internal/noise"
	"bivoc/internal/rng"
	"bivoc/internal/synth"
	"bivoc/internal/warehouse"
)

func main() {
	out := flag.String("out", "", "output directory (required unless -show)")
	show := flag.Bool("show", false, "print Figure 1-style noisy VoC samples and exit")
	seed := flag.Uint64("seed", 2009, "master random seed")
	calls := flag.Int("calls", 1200, "number of car-rental calls")
	emails := flag.Int("emails", 2400, "number of telecom emails")
	sms := flag.Int("sms", 6000, "number of telecom sms")
	flag.Parse()

	if *show {
		showSamples(*seed)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "genvoc: -out DIR is required (or use -show)")
		os.Exit(2)
	}
	if err := run(*out, *seed, *calls, *emails, *sms); err != nil {
		fmt.Fprintf(os.Stderr, "genvoc: %v\n", err)
		os.Exit(1)
	}
}

func run(dir string, seed uint64, calls, emails, sms int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Car-rental world.
	carCfg := synth.DefaultCarRentalConfig()
	carCfg.Seed = seed
	carCfg.CallsPerDay = calls / carCfg.Days
	if carCfg.CallsPerDay < 1 {
		carCfg.CallsPerDay = 1
	}
	world, err := synth.NewCarRentalWorld(carCfg)
	if err != nil {
		return err
	}
	generated := world.GenerateCalls(0, carCfg.Days)
	if err := exportTable(world.DB, "customers", filepath.Join(dir, "customers.csv")); err != nil {
		return err
	}
	if err := exportTable(world.DB, "reservations", filepath.Join(dir, "reservations.csv")); err != nil {
		return err
	}
	if err := exportCalls(generated, world, filepath.Join(dir, "calls.jsonl")); err != nil {
		return err
	}
	if err := exportNotes(generated, world, filepath.Join(dir, "agent_notes.jsonl")); err != nil {
		return err
	}

	// Telecom world.
	telCfg := synth.DefaultTelecomConfig()
	telCfg.Seed = seed
	telCfg.Emails = emails
	telCfg.SMS = sms
	tworld, err := synth.NewTelecomWorld(telCfg)
	if err != nil {
		return err
	}
	if err := exportTable(tworld.DB, "subscribers", filepath.Join(dir, "subscribers.csv")); err != nil {
		return err
	}
	if err := exportMessages(tworld.Emails, filepath.Join(dir, "emails.jsonl")); err != nil {
		return err
	}
	if err := exportMessages(tworld.SMS, filepath.Join(dir, "sms.jsonl")); err != nil {
		return err
	}
	fmt.Printf("wrote %d calls, %d emails, %d sms and 3 tables to %s\n",
		len(generated), len(tworld.Emails), len(tworld.SMS), dir)
	return nil
}

func exportTable(db *warehouse.DB, name, path string) error {
	tab, ok := db.Table(name)
	if !ok {
		return fmt.Errorf("missing table %s", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.ExportCSV(f)
}

// callRecord is the JSONL schema for one call.
type callRecord struct {
	ID         string `json:"id"`
	Day        int    `json:"day"`
	Agent      string `json:"agent"`
	Customer   string `json:"customer"`
	Intent     string `json:"intent"`
	Outcome    string `json:"outcome"`
	Transcript string `json:"transcript"`
}

func exportCalls(calls []synth.Call, world *synth.CarRentalWorld, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, c := range calls {
		rec := callRecord{
			ID:         c.ID,
			Day:        c.Day,
			Agent:      world.Agents[c.AgentIdx].ID,
			Customer:   world.Customers[c.CustIdx].ID,
			Intent:     c.Intent,
			Outcome:    c.Outcome,
			Transcript: strings.Join(c.Transcript, " "),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// noteRecord is the JSONL schema for one agent wrap-up note.
type noteRecord struct {
	CallID string `json:"call_id"`
	Note   string `json:"note"`
}

func exportNotes(calls []synth.Call, world *synth.CarRentalWorld, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, c := range calls {
		if err := enc.Encode(noteRecord{CallID: c.ID, Note: world.AgentNote(c)}); err != nil {
			return err
		}
	}
	return nil
}

// messageRecord is the JSONL schema for one email/sms.
type messageRecord struct {
	ID          string `json:"id"`
	Channel     string `json:"channel"`
	Month       int    `json:"month"`
	Customer    string `json:"customer,omitempty"`
	Spam        bool   `json:"spam,omitempty"`
	FromChurner bool   `json:"from_churner,omitempty"`
	Raw         string `json:"raw"`
}

func exportMessages(msgs []synth.Message, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, m := range msgs {
		rec := messageRecord{
			ID: m.ID, Channel: m.Channel, Month: m.Month,
			Spam: m.Spam, FromChurner: m.FromChurner, Raw: m.Raw,
		}
		if m.CustIdx >= 0 {
			rec.Customer = fmt.Sprintf("S%05d", m.CustIdx)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// showSamples prints Figure 1-style sanitized VoC examples from each
// channel: agent notes, emails, SMS, and an (uppercased) ASR transcript.
func showSamples(seed uint64) {
	r := rng.New(seed)
	fmt.Println("Contact center notes:")
	n := noise.New(noise.AgentNoteNoise)
	for i, s := range []string{
		"the customer secretary called up and he informed that he was not able to access gprs and he told that he will call back with other details later and disconnected the call",
		"customer was charged sms for rs 2013 but customer did not give request for deactivation of sms pack since system down not able to check active or not",
	} {
		fmt.Printf("%d. %s\n", i+1, n.Apply(r.Split(uint64(i)), s))
	}
	fmt.Println("\nEmails:")
	e := noise.New(noise.EmailNoise)
	for i, s := range []string{
		"call center officer assured that request will be carried out within 2 to 3 days but it seems that nothing has been initiated till date in this regard",
		"i have a postpaid connection as of now and feel my bill is too high as per my understanding i almost feel robbed when paying my bill maybe the plan is not appropriate",
	} {
		fmt.Printf("%d. %s\n", i+1, e.Apply(r.Split(uint64(100+i)), s))
	}
	fmt.Println("\nSMS:")
	s := noise.New(noise.SMSNoise)
	for i, msg := range []string{
		"please confirm the receipt of payment of rs 500 paid on 19.05.07 thanks",
		"no care for customer is what you focus on i have to leave as it is not solving my problem goodbye keep not caring for customers",
	} {
		fmt.Printf("%d. %s\n", i+1, s.Apply(r.Split(uint64(200+i)), msg))
	}
	fmt.Println("\nCall transcripts (ASR output is conventionally uppercased):")
	fmt.Println("1.", strings.ToUpper("me check because of which is charges ultimate i want to discontinue with auto debit facility"))
}
