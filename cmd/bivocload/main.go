// Command bivocload is the open-loop load harness for the BIVoC query
// daemons. It synthesizes a mixed, realistic query stream from the
// target's own label vocabulary (discovered live via /v1/concepts),
// then sweeps offered arrival rates and batch sizes against a bivocd
// daemon or a bivocfed coordinator, reporting p50/p95/p99/p999 latency
// (measured from each request's *scheduled* arrival — coordinated
// omission corrected), error and degraded rates, and achieved-vs-
// offered throughput.
//
// Usage:
//
//	bivocload -target http://127.0.0.1:8080 [flags]   drive a running daemon
//	bivocload [-boot mono|fed|both] [flags]           self-boot and drive
//
// Without -target the harness boots its own fleet over a synthetic
// corpus: a single bivocd-equivalent server ("mono"), a sharded fleet
// behind a coordinator ("fed-<k>"), or both. `make bench-load` runs the
// self-boot sweep and records BENCH_load.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bivoc/internal/annotate"
	"bivoc/internal/fed"
	"bivoc/internal/load"
	"bivoc/internal/mining"
	"bivoc/internal/server"
)

func main() {
	target := flag.String("target", "", "base URL of a running bivocd or bivocfed (empty = self-boot)")
	boot := flag.String("boot", "both", "self-boot targets when -target is empty: mono | fed | both")
	shards := flag.Int("shards", 4, "shard count for the self-booted federation")
	docs := flag.Int("docs", 20000, "synthetic corpus size for self-booted targets")
	qpsFlag := flag.String("qps", "500,2000,8000", "comma-separated offered query rates to sweep")
	countQPSFlag := flag.String("count-qps", "", "offered rates for the count mix (empty = use -qps); count queries are cheap, so their knee sits much higher")
	batchFlag := flag.String("batch", "1,32", "comma-separated batch sizes to sweep (1 = single GETs)")
	duration := flag.Duration("duration", 2*time.Second, "arrival schedule length per sweep cell")
	workers := flag.Int("workers", 64, "client concurrency cap")
	pool := flag.Int("pool", 256, "synthesized query pool size")
	mix := flag.String("mix", "mixed", "comma-separated query mixes to sweep: mixed (all endpoints) | count (single-dim counts, transport-dominated)")
	seed := flag.Int64("seed", 1, "query synthesis seed")
	categories := flag.String("categories", "topic,place", "comma-separated concept categories for vocabulary discovery")
	fields := flag.String("fields", "outcome,parity", "comma-separated structured fields for vocabulary discovery")
	out := flag.String("out", "", "write the JSON report to this file (empty = stdout)")
	flag.Parse()

	if err := run(options{
		target:     *target,
		boot:       *boot,
		shards:     *shards,
		docs:       *docs,
		qps:        *qpsFlag,
		countQPS:   *countQPSFlag,
		batch:      *batchFlag,
		duration:   *duration,
		workers:    *workers,
		pool:       *pool,
		mixes:      splitList(*mix),
		seed:       *seed,
		categories: splitList(*categories),
		fields:     splitList(*fields),
		out:        *out,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bivocload:", err)
		os.Exit(1)
	}
}

type options struct {
	target     string
	boot       string
	shards     int
	docs       int
	qps        string
	countQPS   string
	batch      string
	duration   time.Duration
	workers    int
	pool       int
	mixes      []string
	seed       int64
	categories []string
	fields     []string
	out        string
}

// sweepRun is one cell of the report: a target crossed with one
// (query mix, offered QPS, batch size) triple. Memory is the target's
// /statsz memory section sampled right after the cell finished (absent
// when the target does not expose one, e.g. a coordinator), so a sweep
// doubles as a resident-size profile — the interesting read under
// -mmap, where heap should track the hot working set, not the corpus.
type sweepRun struct {
	Target string                  `json:"target"`
	Mix    string                  `json:"mix"`
	Memory *server.MemoryStatsJSON `json:"memory,omitempty"`
	load.Report
}

// reportDescription heads the BENCH_load.json document so the recorded
// numbers explain their own methodology.
const reportDescription = "Open-loop load sweep (cmd/bivocload): arrivals pre-scheduled at the offered rate, latency measured from each request's scheduled arrival (coordinated-omission corrected), so a saturated target shows queueing delay in the percentiles instead of silently throttling the generator. The achieved-vs-offered knee is the target's capacity. Targets are self-booted over the same synthetic corpus: one daemon (mono) and a sharded federation behind a coordinator (fed-k). The mixed sweep is the dashboard-style query blend synthesized from the live /v1/concepts vocabulary; the count sweep is single-dim /v1/count only — the transport-dominated workload where /v1/batch amortization shows up as a higher sustainable query rate per HTTP request. batch=1 issues single GETs; batch=N groups N queries per /v1/batch POST at the same offered query rate. Reproduce with `make bench-load`."

// report is the BENCH_load.json document.
type report struct {
	Description string     `json:"description"`
	Date        string     `json:"date"`
	GOOS        string     `json:"goos"`
	GOARCH      string     `json:"goarch"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Docs        int        `json:"docs,omitempty"`
	DurationMS  int64      `json:"duration_ms"`
	Workers     int        `json:"workers"`
	Pool        int        `json:"pool"`
	Seed        int64      `json:"seed"`
	Runs        []sweepRun `json:"runs"`
}

// target is one system under test, self-booted or external.
type target struct {
	name string
	base string
	stop func()
}

func run(o options) error {
	qpsList, err := parseFloats(o.qps)
	if err != nil {
		return fmt.Errorf("-qps: %w", err)
	}
	countQPSList := qpsList
	if o.countQPS != "" {
		if countQPSList, err = parseFloats(o.countQPS); err != nil {
			return fmt.Errorf("-count-qps: %w", err)
		}
	}
	batchList, err := parseInts(o.batch)
	if err != nil {
		return fmt.Errorf("-batch: %w", err)
	}
	if len(o.mixes) == 0 {
		return fmt.Errorf("-mix: empty list")
	}
	for _, mix := range o.mixes {
		if mix != "mixed" && mix != "count" {
			return fmt.Errorf("-mix %q: want mixed or count", mix)
		}
	}

	targets, err := resolveTargets(o)
	if err != nil {
		return err
	}
	defer func() {
		for _, t := range targets {
			if t.stop != nil {
				t.stop()
			}
		}
	}()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.workers}}
	rep := report{
		Description: reportDescription,
		Date:        time.Now().UTC().Format("2006-01-02"),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		DurationMS:  o.duration.Milliseconds(),
		Workers:     o.workers,
		Pool:        o.pool,
		Seed:        o.seed,
	}
	if o.target == "" {
		rep.Docs = o.docs
	}

	for _, t := range targets {
		vocab, err := load.DiscoverVocab(client, t.base, o.categories, o.fields)
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		for _, mix := range o.mixes {
			synthesize, rates := load.SynthesizeQueries, qpsList
			if mix == "count" {
				synthesize, rates = load.SynthesizeCountQueries, countQPSList
			}
			queries, err := synthesize(vocab, o.pool, o.seed)
			if err != nil {
				return fmt.Errorf("%s: %w", t.name, err)
			}
			for _, batch := range batchList {
				for _, qps := range rates {
					r, err := load.Run(context.Background(), load.Config{
						Base:     t.base,
						Client:   client,
						QPS:      qps,
						Duration: o.duration,
						Workers:  o.workers,
						Batch:    batch,
						Queries:  queries,
					})
					if err != nil {
						return fmt.Errorf("%s %s qps=%g batch=%d: %w", t.name, mix, qps, batch, err)
					}
					fmt.Fprintf(os.Stderr,
						"bivocload: %-6s %-5s batch=%-3d offered=%-7.0f achieved=%-7.0f p50=%dus p99=%dus p999=%dus errors=%d\n",
						t.name, mix, batch, r.OfferedQPS, r.AchievedQPS, r.P50US, r.P99US, r.P999US, r.Errors)
					rep.Runs = append(rep.Runs, sweepRun{Target: t.name, Mix: mix, Memory: fetchMemory(client, t.base), Report: r})
				}
			}
		}
	}

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if o.out == "" {
		_, err = os.Stdout.Write(body)
		return err
	}
	return os.WriteFile(o.out, body, 0o644)
}

// fetchMemory samples the target's /statsz memory section. Best-effort:
// a target without one (a coordinator, an older daemon) yields nil and
// the report cell simply omits the field.
func fetchMemory(client *http.Client, base string) *server.MemoryStatsJSON {
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var ss struct {
		Memory *server.MemoryStatsJSON `json:"memory"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&ss) != nil {
		return nil
	}
	return ss.Memory
}

// resolveTargets returns the systems under test, booting local fleets
// when no external target was given.
func resolveTargets(o options) ([]target, error) {
	if o.target != "" {
		return []target{{name: "target", base: o.target}}, nil
	}
	corpus := loadCorpus(o.docs)
	var targets []target
	if o.boot == "mono" || o.boot == "both" {
		t, err := bootMono(corpus)
		if err != nil {
			return stopAll(targets, err)
		}
		targets = append(targets, t)
	}
	if o.boot == "fed" || o.boot == "both" {
		t, err := bootFed(corpus, o.shards)
		if err != nil {
			return stopAll(targets, err)
		}
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("-boot %q: want mono, fed, or both", o.boot)
	}
	return targets, nil
}

func stopAll(targets []target, err error) ([]target, error) {
	for _, t := range targets {
		if t.stop != nil {
			t.stop()
		}
	}
	return nil, err
}

// loadCorpus synthesizes the self-boot corpus: topic/place concepts,
// outcome/parity fields, a time bucket — the dimensional shape the
// serving benchmarks use.
func loadCorpus(n int) []mining.Document {
	topics := []string{"billing", "coverage", "roadside", "upgrade", "refund"}
	places := []string{"austin", "dallas", "boston", "seattle", "reno"}
	docs := make([]mining.Document, n)
	for i := range docs {
		parity := "even"
		if i%2 == 1 {
			parity = "odd"
		}
		concepts := []annotate.Concept{
			{Category: "topic", Canonical: topics[i%len(topics)]},
		}
		if i%3 == 0 {
			concepts = append(concepts, annotate.Concept{Category: "place", Canonical: places[(i/3)%len(places)]})
		}
		docs[i] = mining.Document{
			ID:       fmt.Sprintf("load-%07d", i),
			Concepts: concepts,
			Fields:   map[string]string{"parity": parity, "outcome": []string{"reservation", "unbooked", "service"}[i%3]},
			Time:     i / 100,
		}
	}
	return docs
}

func sliceSource(docs []mining.Document) server.DocSource {
	return func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
}

// startServer boots one sealed server over src.
func startServer(src server.DocSource) (*server.Server, error) {
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Source: src})
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	select {
	case <-s.IngestDone():
	case <-time.After(120 * time.Second):
		return nil, fmt.Errorf("ingest did not seal in time")
	}
	return s, nil
}

func shutdown(stop func(ctx context.Context) error) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	stop(ctx)
}

// bootMono boots a single daemon over the whole corpus.
func bootMono(docs []mining.Document) (target, error) {
	s, err := startServer(sliceSource(docs))
	if err != nil {
		return target{}, fmt.Errorf("booting mono: %w", err)
	}
	return target{
		name: "mono",
		base: "http://" + s.Addr(),
		stop: func() { shutdown(s.Shutdown) },
	}, nil
}

// bootFed boots k shard daemons over the partitioned corpus plus a
// coordinator in front.
func bootFed(docs []mining.Document, k int) (target, error) {
	if k < 1 {
		k = 1
	}
	var stops []func()
	stopFleet := func() {
		for _, stop := range stops {
			stop()
		}
	}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		s, err := startServer(fed.PartitionSource(sliceSource(docs), i, k))
		if err != nil {
			stopFleet()
			return target{}, fmt.Errorf("booting shard %d/%d: %w", i, k, err)
		}
		stops = append(stops, func() { shutdown(s.Shutdown) })
		addrs[i] = "http://" + s.Addr()
	}
	c, err := fed.NewCoordinator(fed.Config{Addr: "127.0.0.1:0", Shards: addrs})
	if err == nil {
		err = c.Start()
	}
	if err != nil {
		stopFleet()
		return target{}, fmt.Errorf("booting coordinator: %w", err)
	}
	stops = append([]func(){func() { shutdown(c.Shutdown) }}, stops...)
	return target{
		name: fmt.Sprintf("fed-%d", k),
		base: "http://" + c.Addr(),
		stop: stopFleet,
	}, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad batch size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
