package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestLoadSmoke is the black-box harness check `make smoke` runs: build
// the real binary, self-boot a tiny mono + two-shard fed fleet, sweep
// one rate at two batch sizes, and require a clean exit with a
// well-formed, error-free JSON report.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the load harness binary")
	}
	bin := filepath.Join(t.TempDir(), "bivocload")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	outPath := filepath.Join(t.TempDir(), "report.json")
	cmd := exec.Command(bin,
		"-boot", "both",
		"-shards", "2",
		"-docs", "400",
		"-qps", "300",
		"-batch", "1,8",
		"-duration", "300ms",
		"-workers", "8",
		"-pool", "32",
		"-out", outPath)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("bivocload: %v", err)
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Docs int `json:"docs"`
		Runs []struct {
			Target      string  `json:"target"`
			Mix         string  `json:"mix"`
			OfferedQPS  float64 `json:"offered_qps"`
			AchievedQPS float64 `json:"achieved_qps"`
			Requests    int     `json:"requests"`
			Queries     int     `json:"queries"`
			Batch       int     `json:"batch"`
			Errors      int     `json:"errors"`
			SubErrors   int     `json:"sub_errors"`
			Degraded    int     `json:"degraded"`
			P50US       int64   `json:"p50_us"`
			P999US      int64   `json:"p999_us"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if rep.Docs != 400 {
		t.Fatalf("report docs = %d, want 400", rep.Docs)
	}
	// 2 targets (mono, fed-2) x 2 batch sizes x 1 rate.
	if len(rep.Runs) != 4 {
		t.Fatalf("report has %d runs, want 4:\n%s", len(rep.Runs), raw)
	}
	seen := map[string]int{}
	for _, r := range rep.Runs {
		seen[r.Target]++
		if r.Mix != "mixed" {
			t.Fatalf("%s batch=%d: mix %q, want mixed", r.Target, r.Batch, r.Mix)
		}
		if r.Errors != 0 || r.SubErrors != 0 || r.Degraded != 0 {
			t.Fatalf("%s batch=%d: errors=%d sub_errors=%d degraded=%d, want clean", r.Target, r.Batch, r.Errors, r.SubErrors, r.Degraded)
		}
		if r.Requests == 0 || r.Queries != r.Requests*r.Batch || r.AchievedQPS <= 0 {
			t.Fatalf("%s batch=%d: implausible run %+v", r.Target, r.Batch, r)
		}
		if r.P50US <= 0 || r.P999US < r.P50US {
			t.Fatalf("%s batch=%d: implausible percentiles %+v", r.Target, r.Batch, r)
		}
	}
	if seen["mono"] != 2 || seen["fed-2"] != 2 {
		t.Fatalf("report targets %v, want mono and fed-2 twice each", seen)
	}
}
